package provenance

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestIndexScanEquivalence is the D8 property test: under a random
// interleaving of node inserts, edge inserts, attribute updates and
// snapshots, every index-served read (Nodes with class/type filters,
// NodesByType, typed Edges, typed Neighbors, HasEdge) must return exactly
// what brute-force filtering over the flat record list returns — on the
// working graph, on the scan ablation (DisableIndexLookups), and on every
// frozen snapshot taken along the way.
func TestIndexScanEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewGraph()

	apps := []string{"AppA", "AppB", "AppC"}
	classes := []Class{ClassData, ClassTask, ClassResource, ClassCustom}
	// Types are drawn independently of classes so the residual path
	// (type posting filtered by class) sees genuine mismatches.
	nodeTypes := []string{"person", "submission", "jobRequisition", "approvalStatus"}
	edgeTypes := []string{"actor", "generates", "nextTask"}

	var nodes []*Node // flat model, same record pointers as the graph
	var edges []*Edge
	type frozenState struct {
		g     *Graph
		nodes []*Node
		edges []*Edge
	}
	var frozen []frozenState

	nodeSeq, edgeSeq := 0, 0
	for step := 0; step < 1500; step++ {
		switch op := rng.Intn(12); {
		case op < 6: // insert a node
			n := node(fmt.Sprintf("n%04d", nodeSeq), apps[rng.Intn(len(apps))],
				classes[rng.Intn(len(classes))], nodeTypes[rng.Intn(len(nodeTypes))], nil)
			nodeSeq++
			if err := g.AddNode(n); err != nil {
				t.Fatalf("step %d: AddNode: %v", step, err)
			}
			nodes = append(nodes, n)
		case op < 10 && len(nodes) > 1: // insert an edge within one trace
			src := nodes[rng.Intn(len(nodes))]
			dst := nodes[rng.Intn(len(nodes))]
			if src.AppID != dst.AppID || src.ID == dst.ID {
				continue
			}
			e := edge(fmt.Sprintf("e%04d", edgeSeq), src.AppID,
				edgeTypes[rng.Intn(len(edgeTypes))], src.ID, dst.ID)
			edgeSeq++
			if err := g.AddEdge(e); err != nil {
				t.Fatalf("step %d: AddEdge: %v", step, err)
			}
			edges = append(edges, e)
		case op == 10 && len(nodes) > 0: // enrich a node in place
			i := rng.Intn(len(nodes))
			upd := nodes[i].Clone()
			upd.SetAttr("touched", String(fmt.Sprintf("step-%d", step)))
			if err := g.UpdateNode(upd); err != nil {
				t.Fatalf("step %d: UpdateNode: %v", step, err)
			}
			nodes[i] = upd
		default: // freeze a snapshot together with the model at this point
			frozen = append(frozen, frozenState{
				g:     g.Snapshot(),
				nodes: append([]*Node(nil), nodes...),
				edges: append([]*Edge(nil), edges...),
			})
		}
		if step%300 == 299 {
			checkIndexEquivalence(t, rng, g, nodes, edges, apps, classes, nodeTypes, edgeTypes)
		}
	}

	checkIndexEquivalence(t, rng, g, nodes, edges, apps, classes, nodeTypes, edgeTypes)
	if len(frozen) == 0 {
		t.Fatal("no snapshots taken; rng schedule broken")
	}
	for i, fs := range frozen {
		if !fs.g.Frozen() {
			t.Fatalf("snapshot %d not frozen", i)
		}
		checkIndexEquivalence(t, rng, fs.g, fs.nodes, fs.edges, apps, classes, nodeTypes, edgeTypes)
	}
}

// checkIndexEquivalence compares every read path against brute force on
// the flat model, twice: once on g (index-served) and once on a frozen
// copy with index lookups disabled (the E11 scan ablation).
func checkIndexEquivalence(t *testing.T, rng *rand.Rand, g *Graph, nodes []*Node, edges []*Edge,
	apps []string, classes []Class, nodeTypes, edgeTypes []string) {
	t.Helper()

	views := []*Graph{g}
	if !g.Frozen() {
		scan := g.Snapshot()
		scan.DisableIndexLookups()
		views = append(views, scan)
	} else {
		// Frozen graphs are checked in place; flip the same snapshot to
		// scanning afterwards for a second pass.
		defer func() {
			g.DisableIndexLookups()
			checkNodeReads(t, g, nodes, apps, classes, nodeTypes)
			checkEdgeReads(t, rng, g, nodes, edges, edgeTypes)
		}()
	}
	for _, v := range views {
		checkNodeReads(t, v, nodes, apps, classes, nodeTypes)
		checkEdgeReads(t, rng, v, nodes, edges, edgeTypes)
	}
}

func checkNodeReads(t *testing.T, g *Graph, nodes []*Node, apps []string, classes []Class, nodeTypes []string) {
	t.Helper()
	allApps := append([]string{""}, apps...)
	allClasses := append([]Class{ClassInvalid}, classes...)
	allTypes := append([]string{""}, nodeTypes...)
	for _, app := range allApps {
		for _, cl := range allClasses {
			for _, typ := range allTypes {
				f := NodeFilter{Class: cl, Type: typ, AppID: app}
				var want []*Node
				for _, n := range nodes {
					if f.Matches(n) {
						want = append(want, n)
					}
				}
				sortNodesByID(want)
				assertSameNodes(t, fmt.Sprintf("Nodes(%+v)", f), g.Nodes(f), want)
				if cl == ClassInvalid && typ != "" {
					assertSameNodes(t, fmt.Sprintf("NodesByType(%q, %q)", app, typ),
						g.NodesByType(app, typ), want)
				}
			}
		}
	}
}

func checkEdgeReads(t *testing.T, rng *rand.Rand, g *Graph, nodes []*Node, edges []*Edge, edgeTypes []string) {
	t.Helper()
	if len(nodes) == 0 {
		return
	}
	allTypes := append([]string{""}, edgeTypes...)
	for probe := 0; probe < 25; probe++ {
		n := nodes[rng.Intn(len(nodes))]
		for _, dir := range []Direction{Out, In, Both} {
			for _, typ := range allTypes {
				var want []*Edge
				for _, e := range edges {
					if typ != "" && e.Type != typ {
						continue
					}
					touches := (dir == Out && e.Source == n.ID) ||
						(dir == In && e.Target == n.ID) ||
						(dir == Both && (e.Source == n.ID || e.Target == n.ID))
					if touches {
						want = append(want, e)
					}
				}
				sortEdgesByID(want)
				label := fmt.Sprintf("Edges(%q, %v, %q)", n.ID, dir, typ)
				got := g.Edges(n.ID, dir, typ)
				if len(got) != len(want) {
					t.Fatalf("%s: %d edges, want %d", label, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s[%d] = %s, want %s", label, i, got[i].ID, want[i].ID)
					}
				}
				// Neighbors must agree with the unique endpoints of want.
				seen := map[string]bool{}
				var wantNb []string
				for _, e := range want {
					other := e.Target
					if e.Target == n.ID {
						other = e.Source
					}
					if !seen[other] {
						seen[other] = true
						wantNb = append(wantNb, other)
					}
				}
				sortStrings(wantNb)
				nb := g.Neighbors(n.ID, dir, typ)
				if len(nb) != len(wantNb) {
					t.Fatalf("Neighbors(%q, %v, %q): %d nodes, want %d", n.ID, dir, typ, len(nb), len(wantNb))
				}
				for i := range nb {
					if nb[i].ID != wantNb[i] {
						t.Fatalf("Neighbors(%q, %v, %q)[%d] = %s, want %s", n.ID, dir, typ, i, nb[i].ID, wantNb[i])
					}
				}
			}
		}
	}
	// HasEdge over a sample of (source, type, target) triples, half real.
	for probe := 0; probe < 40; probe++ {
		var src, dst string
		typ := edgeTypes[rng.Intn(len(edgeTypes))]
		if probe%2 == 0 && len(edges) > 0 {
			e := edges[rng.Intn(len(edges))]
			src, dst, typ = e.Source, e.Target, e.Type
		} else {
			src = nodes[rng.Intn(len(nodes))].ID
			dst = nodes[rng.Intn(len(nodes))].ID
		}
		want := false
		for _, e := range edges {
			if e.Source == src && e.Target == dst && e.Type == typ {
				want = true
				break
			}
		}
		if got := g.HasEdge(src, typ, dst); got != want {
			t.Fatalf("HasEdge(%q, %q, %q) = %v, want %v", src, typ, dst, got, want)
		}
	}
}

func assertSameNodes(t *testing.T, label string, got, want []*Node) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d nodes, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %s, want %s", label, i, got[i].ID, want[i].ID)
		}
	}
}

func sortNodesByID(ns []*Node) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j].ID < ns[j-1].ID; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

func sortEdgesByID(es []*Edge) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].ID < es[j-1].ID; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// TestIndexedLookupAllocs gates the hot binder lookup paths: a
// trace-scoped NodesByType must cost exactly one allocation (the result
// slice), a typed Edges lookup at most one, and HasEdge zero.
func TestIndexedLookupAllocs(t *testing.T) {
	g := NewGraph()
	const app = "AppA"
	for i := 0; i < 200; i++ {
		if err := g.AddNode(node(fmt.Sprintf("p%03d", i), app, ClassResource, "person", nil)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddNode(node("task0", app, ClassTask, "submission", nil)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := g.AddEdge(edge(fmt.Sprintf("a%03d", i), app, "actor", fmt.Sprintf("p%03d", i), "task0")); err != nil {
			t.Fatal(err)
		}
	}
	snap := g.Snapshot()

	if got := testing.AllocsPerRun(200, func() {
		if len(snap.NodesByType(app, "person")) != 200 {
			t.Fatal("wrong result size")
		}
	}); got > 1 {
		t.Errorf("NodesByType allocs/run = %.1f, want <= 1", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		if len(snap.Edges("task0", In, "actor")) != 50 {
			t.Fatal("wrong result size")
		}
	}); got > 1 {
		t.Errorf("typed Edges allocs/run = %.1f, want <= 1", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		if !snap.HasEdge("p000", "actor", "task0") {
			t.Fatal("edge missing")
		}
	}); got != 0 {
		t.Errorf("HasEdge allocs/run = %.1f, want 0", got)
	}
}
