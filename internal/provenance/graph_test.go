package provenance

import (
	"fmt"
	"testing"
	"time"
)

func node(id, app string, class Class, typ string, attrs map[string]Value) *Node {
	return &Node{
		ID: id, Class: class, Type: typ, AppID: app,
		Timestamp: time.Unix(0, 0).UTC(), Attrs: attrs,
	}
}

func edge(id, app, typ, src, dst string) *Edge {
	return &Edge{ID: id, Type: typ, AppID: app, Source: src, Target: dst,
		Timestamp: time.Unix(0, 0).UTC()}
}

// hiringTrace builds the Fig 2 trace of the paper's "new position open"
// process: resources, tasks, data artifacts and the relations among them.
func hiringTrace(t testing.TB, g *Graph, app string) {
	t.Helper()
	add := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	add(g.AddNode(node(app+"-hm", app, ClassResource, "person", map[string]Value{
		"name": String("Joe Doe"), "manager": String("Jane Smith"),
	})))
	add(g.AddNode(node(app+"-gm", app, ClassResource, "person", map[string]Value{
		"name": String("Jane Smith"),
	})))
	add(g.AddNode(node(app+"-submit", app, ClassTask, "submission", nil)))
	add(g.AddNode(node(app+"-approve", app, ClassTask, "approval", nil)))
	add(g.AddNode(node(app+"-req", app, ClassData, "jobRequisition", map[string]Value{
		"reqID": String("REQ-" + app), "positionType": String("new"),
	})))
	add(g.AddNode(node(app+"-apprv", app, ClassData, "approvalStatus", map[string]Value{
		"approved": Bool(true),
	})))
	add(g.AddNode(node(app+"-cand", app, ClassData, "candidateList", nil)))
	add(g.AddEdge(edge(app+"-e1", app, "actor", app+"-hm", app+"-submit")))
	add(g.AddEdge(edge(app+"-e2", app, "generates", app+"-submit", app+"-req")))
	add(g.AddEdge(edge(app+"-e3", app, "submitterOf", app+"-hm", app+"-req")))
	add(g.AddEdge(edge(app+"-e4", app, "actor", app+"-gm", app+"-approve")))
	add(g.AddEdge(edge(app+"-e5", app, "approvalOf", app+"-apprv", app+"-req")))
	add(g.AddEdge(edge(app+"-e6", app, "nextTask", app+"-submit", app+"-approve")))
}

func TestGraphAddAndLookup(t *testing.T) {
	g := NewGraph()
	hiringTrace(t, g, "App01")
	if g.NumNodes() != 7 || g.NumEdges() != 6 {
		t.Fatalf("census = %d nodes, %d edges; want 7, 6", g.NumNodes(), g.NumEdges())
	}
	n := g.Node("App01-req")
	if n == nil || n.Type != "jobRequisition" {
		t.Fatalf("Node lookup failed: %v", n)
	}
	if g.Node("missing") != nil {
		t.Error("lookup of missing node returned non-nil")
	}
	e := g.Edge("App01-e3")
	if e == nil || e.Type != "submitterOf" {
		t.Fatalf("Edge lookup failed: %v", e)
	}
}

func TestGraphRejectsInvalid(t *testing.T) {
	g := NewGraph()
	if err := g.AddNode(&Node{ID: "x"}); err == nil {
		t.Error("accepted node without class/type/app")
	}
	if err := g.AddNode(node("n1", "A", ClassRelation, "t", nil)); err == nil {
		t.Error("accepted node with relation class")
	}
	if err := g.AddNode(node("n1", "A", ClassData, "doc", nil)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(node("n1", "A", ClassData, "doc", nil)); err == nil {
		t.Error("accepted duplicate node ID")
	}
	if err := g.AddEdge(edge("e1", "A", "rel", "n1", "n1")); err == nil {
		t.Error("accepted self loop")
	}
	if err := g.AddEdge(edge("e1", "A", "rel", "n1", "ghost")); err == nil {
		t.Error("accepted dangling target")
	}
	if err := g.AddNode(node("n2", "B", ClassData, "doc", nil)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(edge("e1", "A", "rel", "n1", "n2")); err == nil {
		t.Error("accepted cross-trace edge")
	}
	if err := g.AddNode(node("n3", "A", ClassData, "doc", nil)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(edge("e1", "A", "rel", "n1", "n3")); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(edge("e1", "A", "rel", "n3", "n1")); err == nil {
		t.Error("accepted duplicate edge ID")
	}
	if err := g.AddEdge(edge("n1", "A", "rel", "n3", "n1")); err == nil {
		t.Error("accepted edge ID colliding with node ID")
	}
	if err := g.AddNode(node("e1", "A", ClassData, "doc", nil)); err == nil {
		t.Error("accepted node ID colliding with edge ID")
	}
}

func TestGraphUpdateNode(t *testing.T) {
	g := NewGraph()
	hiringTrace(t, g, "App01")
	upd := g.Node("App01-req").Clone()
	upd.SetAttr("dept", String("dept501"))
	if err := g.UpdateNode(upd); err != nil {
		t.Fatal(err)
	}
	if got := g.Node("App01-req").Attr("dept").Str(); got != "dept501" {
		t.Errorf("update not applied: dept = %q", got)
	}
	bad := upd.Clone()
	bad.Type = "somethingElse"
	if err := g.UpdateNode(bad); err == nil {
		t.Error("update changing type accepted")
	}
	ghost := node("ghost", "App01", ClassData, "doc", nil)
	if err := g.UpdateNode(ghost); err == nil {
		t.Error("update of unknown node accepted")
	}
}

func TestGraphTraversal(t *testing.T) {
	g := NewGraph()
	hiringTrace(t, g, "App01")

	if !g.HasEdge("App01-hm", "submitterOf", "App01-req") {
		t.Error("HasEdge missed submitterOf")
	}
	if g.HasEdge("App01-req", "submitterOf", "App01-hm") {
		t.Error("HasEdge matched reversed direction")
	}
	if g.HasEdge("App01-hm", "actor", "App01-req") {
		t.Error("HasEdge matched wrong type")
	}

	outs := g.Edges("App01-hm", Out, "")
	if len(outs) != 2 {
		t.Fatalf("out edges of hiring manager = %d, want 2", len(outs))
	}
	ins := g.Edges("App01-req", In, "")
	if len(ins) != 3 {
		t.Fatalf("in edges of requisition = %d, want 3", len(ins))
	}
	both := g.Edges("App01-submit", Both, "")
	if len(both) != 3 {
		t.Fatalf("edges of submit task = %d, want 3", len(both))
	}
	typed := g.Edges("App01-req", In, "approvalOf")
	if len(typed) != 1 || typed[0].Source != "App01-apprv" {
		t.Fatalf("typed in edges = %v", typed)
	}

	nbrs := g.Neighbors("App01-req", In, "")
	if len(nbrs) != 3 {
		t.Fatalf("in neighbors of requisition = %d, want 3", len(nbrs))
	}
	submitters := g.Neighbors("App01-req", In, "submitterOf")
	if len(submitters) != 1 || submitters[0].Attr("name").Str() != "Joe Doe" {
		t.Fatalf("submitters = %v", submitters)
	}
	if n := g.Neighbors("App01-req", Out, ""); len(n) != 0 {
		t.Fatalf("requisition has out neighbors: %v", n)
	}
}

func TestGraphNeighborsDeduplicates(t *testing.T) {
	g := NewGraph()
	if err := g.AddNode(node("a", "A", ClassTask, "t", nil)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(node("b", "A", ClassData, "d", nil)); err != nil {
		t.Fatal(err)
	}
	// Two parallel edges of different types between the same nodes.
	if err := g.AddEdge(edge("e1", "A", "reads", "a", "b")); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(edge("e2", "A", "writes", "a", "b")); err != nil {
		t.Fatal(err)
	}
	if n := g.Neighbors("a", Out, ""); len(n) != 1 {
		t.Fatalf("neighbors not deduplicated: %v", n)
	}
	if n := g.Neighbors("a", Both, ""); len(n) != 1 {
		t.Fatalf("Both neighbors not deduplicated: %v", n)
	}
}

func TestGraphFilters(t *testing.T) {
	g := NewGraph()
	hiringTrace(t, g, "App01")
	hiringTrace(t, g, "App02")

	data := g.Nodes(NodeFilter{Class: ClassData})
	if len(data) != 6 {
		t.Fatalf("data nodes = %d, want 6", len(data))
	}
	reqs := g.Nodes(NodeFilter{Type: "jobRequisition", AppID: "App02"})
	if len(reqs) != 1 || reqs[0].ID != "App02-req" {
		t.Fatalf("filtered reqs = %v", reqs)
	}
	all := g.Nodes(NodeFilter{})
	if len(all) != 14 {
		t.Fatalf("all nodes = %d, want 14", len(all))
	}
	actors := g.AllEdges(EdgeFilter{Type: "actor"})
	if len(actors) != 4 {
		t.Fatalf("actor edges = %d, want 4", len(actors))
	}
	app1Edges := g.AllEdges(EdgeFilter{AppID: "App01"})
	if len(app1Edges) != 6 {
		t.Fatalf("App01 edges = %d, want 6", len(app1Edges))
	}
}

func TestGraphTraceExtraction(t *testing.T) {
	g := NewGraph()
	hiringTrace(t, g, "App01")
	hiringTrace(t, g, "App02")

	tr := g.Trace("App01")
	if tr.NumNodes() != 7 || tr.NumEdges() != 6 {
		t.Fatalf("trace census = %d/%d, want 7/6", tr.NumNodes(), tr.NumEdges())
	}
	if tr.Node("App02-req") != nil {
		t.Error("trace leaked another app's node")
	}
	if !tr.HasEdge("App01-hm", "submitterOf", "App01-req") {
		t.Error("trace lost adjacency")
	}
	ids := g.AppIDs()
	if len(ids) != 2 || ids[0] != "App01" || ids[1] != "App02" {
		t.Fatalf("AppIDs = %v", ids)
	}
}

func TestGraphCensus(t *testing.T) {
	g := NewGraph()
	hiringTrace(t, g, "App01")
	c := g.TakeCensus()
	if c.Nodes != 7 || c.Edges != 6 {
		t.Fatalf("census totals %d/%d", c.Nodes, c.Edges)
	}
	if c.ByClass[ClassData] != 3 || c.ByClass[ClassTask] != 2 || c.ByClass[ClassResource] != 2 {
		t.Fatalf("census by class = %v", c.ByClass)
	}
	if c.ByType["person"] != 2 {
		t.Fatalf("census by type = %v", c.ByType)
	}
	if c.EdgeTypes["actor"] != 2 {
		t.Fatalf("census edge types = %v", c.EdgeTypes)
	}
}

func TestGraphDeterministicOrdering(t *testing.T) {
	// Build the same graph twice with different insert interleavings and
	// ensure query results come back in the same (sorted) order.
	build := func(order []int) *Graph {
		g := NewGraph()
		apps := []string{"App03", "App01", "App02"}
		for _, i := range order {
			hiringTrace(t, g, apps[i])
		}
		return g
	}
	g1 := build([]int{0, 1, 2})
	g2 := build([]int{2, 0, 1})
	n1 := g1.Nodes(NodeFilter{Class: ClassTask})
	n2 := g2.Nodes(NodeFilter{Class: ClassTask})
	if len(n1) != len(n2) {
		t.Fatalf("lengths differ: %d vs %d", len(n1), len(n2))
	}
	for i := range n1 {
		if n1[i].ID != n2[i].ID {
			t.Fatalf("ordering differs at %d: %s vs %s", i, n1[i].ID, n2[i].ID)
		}
	}
}

func BenchmarkGraphHasEdge(b *testing.B) {
	g := NewGraph()
	for i := 0; i < 100; i++ {
		hiringTrace(b, g, fmt.Sprintf("App%03d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !g.HasEdge("App050-hm", "submitterOf", "App050-req") {
			b.Fatal("edge missing")
		}
	}
}
