package provenance

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Direction selects edge orientation relative to a node when traversing.
type Direction int

const (
	// Out follows edges whose Source is the node.
	Out Direction = iota
	// In follows edges whose Target is the node.
	In
	// Both follows edges in either orientation.
	Both
)

// String returns "out", "in" or "both".
func (d Direction) String() string {
	switch d {
	case Out:
		return "out"
	case In:
		return "in"
	default:
		return "both"
	}
}

// ErrFrozen is returned by mutating methods on a snapshot (or on a
// subgraph returned by Trace): snapshots are immutable by contract, so a
// write to one is always a caller bug, never a data race.
var ErrFrozen = errors.New("provenance: graph is a frozen snapshot")

// ErrDuplicate marks AddNode/AddEdge rejections caused by an ID that is
// already recorded. At-least-once delivery paths (the ingestion gateway's
// retry semantics) match it with errors.Is to distinguish a redelivered
// record — benign when the stored row is identical — from a genuine
// validation failure.
var ErrDuplicate = errors.New("duplicate record ID")

const (
	// graphBuckets is the fan-out of the trace-shard root. The root is a
	// value array of bucket pointers, so publishing a snapshot copies
	// exactly graphBuckets words no matter how many traces the graph
	// holds; a mutation then clones only the one bucket (and the one
	// shard) it touches.
	graphBuckets = 64
	// routerStripes is the lock striping of the record-ID router.
	routerStripes = 64
)

// fnv32 is an inline FNV-1a so bucket/stripe selection never allocates.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// router maps record IDs to the trace that owns them. It is shared by a
// working graph and every snapshot derived from it: record IDs are
// write-once (never reused, never re-homed to another trace), so an entry
// is immutable after insertion and striped-lock reads stay coherent
// across snapshots. A router hit only locates the candidate owning trace;
// visibility is always decided by the (possibly older) shard the calling
// graph actually holds.
type router struct {
	stripes [routerStripes]routerStripe
}

type routerStripe struct {
	mu sync.RWMutex
	m  map[string]string
	// peak is the stripe's high-water entry count. Go maps never release
	// bucket arrays on delete, so after a large eviction the map would
	// keep its peak footprint forever; drop rebuilds the map once it has
	// shrunk well below peak, which is what actually returns the memory.
	peak int
}

// routerShrinkSlack keeps tiny stripes from rebuilding on every drop.
const routerShrinkSlack = 64

func newRouter() *router {
	r := &router{}
	for i := range r.stripes {
		r.stripes[i].m = make(map[string]string)
	}
	return r
}

func (r *router) get(id string) (string, bool) {
	st := &r.stripes[fnv32(id)%routerStripes]
	st.mu.RLock()
	app, ok := st.m[id]
	st.mu.RUnlock()
	return app, ok
}

func (r *router) put(id, app string) {
	st := &r.stripes[fnv32(id)%routerStripes]
	st.mu.Lock()
	st.m[id] = app
	if len(st.m) > st.peak {
		st.peak = len(st.m)
	}
	st.mu.Unlock()
}

// drop removes a batch of IDs. Used when a trace's records leave the hot
// tier for good (demotion to a sealed segment): retaining the entries
// would grow the router linearly with total trace count and defeat
// tiering's bounded-memory goal. See Graph.EvictRouting for the
// visibility contract.
func (r *router) drop(ids []string) {
	var grouped [routerStripes][]string
	for _, id := range ids {
		si := fnv32(id) % routerStripes
		grouped[si] = append(grouped[si], id)
	}
	for si := range grouped {
		if len(grouped[si]) == 0 {
			continue
		}
		st := &r.stripes[si]
		st.mu.Lock()
		for _, id := range grouped[si] {
			delete(st.m, id)
		}
		// Rebuild once well below peak; halving the trigger each time
		// keeps total rebuild work linear across a long demotion run.
		if st.peak > 2*len(st.m)+routerShrinkSlack {
			m := make(map[string]string, len(st.m))
			for k, v := range st.m {
				m[k] = v
			}
			st.m = m
			st.peak = len(m)
		}
		st.mu.Unlock()
	}
}

// traceShard holds one trace's records: node and edge maps, adjacency
// lists, and the ID slices backing sorted iteration. Adjacency lists and
// ID slices are kept sorted at insert time, so reads never sort.
//
// A shard is copy-on-first-write per epoch: Snapshot() freezes the whole
// tree by bumping the working graph's epoch, and the first mutation of a
// trace in the new epoch deep-copies its shard. Later mutations in the
// same epoch hit the private copy in place, so copy cost is amortized
// once per (touched trace × published snapshot), not per write.
type traceShard struct {
	epoch uint64
	// ver is the trace's monotonic version: the number of mutating
	// commits that touched it. The continuous-checking result cache keys
	// on it, and the snapshot-isolation stress test asserts a snapshot's
	// ver always equals the record count the same snapshot exposes.
	ver     uint64
	nodes   map[string]*Node
	edges   map[string]*Edge
	out     map[string][]string // node ID -> sorted edge IDs with Source == node
	in      map[string][]string // node ID -> sorted edge IDs with Target == node
	nodeIDs []string            // sorted
	edgeIDs []string            // sorted

	// Secondary indexes (see index.go): sorted posting lists maintained
	// at insert time under the same copy-on-write discipline as the
	// record maps above.
	byClass map[Class][]string  // node class -> sorted node IDs
	byType  map[string][]string // node type -> sorted node IDs
	outT    map[adjKey][]string // (source, edge type) -> sorted edge IDs
	inT     map[adjKey][]string // (target, edge type) -> sorted edge IDs
}

func newTraceShard(epoch uint64) *traceShard {
	return &traceShard{
		epoch:   epoch,
		nodes:   make(map[string]*Node),
		edges:   make(map[string]*Edge),
		out:     make(map[string][]string),
		in:      make(map[string][]string),
		byClass: make(map[Class][]string),
		byType:  make(map[string][]string),
		outT:    make(map[adjKey][]string),
		inT:     make(map[adjKey][]string),
	}
}

// clone deep-copies the shard's containers (record pointers are shared:
// records are immutable once stored). Slices are copied too, because
// in-epoch inserts shift elements in place.
func (sh *traceShard) clone(epoch uint64) *traceShard {
	c := &traceShard{
		epoch:   epoch,
		ver:     sh.ver,
		nodes:   make(map[string]*Node, len(sh.nodes)+1),
		edges:   make(map[string]*Edge, len(sh.edges)+1),
		out:     make(map[string][]string, len(sh.out)+1),
		in:      make(map[string][]string, len(sh.in)+1),
		nodeIDs: append(make([]string, 0, len(sh.nodeIDs)+1), sh.nodeIDs...),
		edgeIDs: append(make([]string, 0, len(sh.edgeIDs)+1), sh.edgeIDs...),
		byClass: make(map[Class][]string, len(sh.byClass)),
		byType:  make(map[string][]string, len(sh.byType)),
		outT:    make(map[adjKey][]string, len(sh.outT)+1),
		inT:     make(map[adjKey][]string, len(sh.inT)+1),
	}
	for k, v := range sh.nodes {
		c.nodes[k] = v
	}
	for k, v := range sh.edges {
		c.edges[k] = v
	}
	for k, v := range sh.out {
		c.out[k] = append(make([]string, 0, len(v)), v...)
	}
	for k, v := range sh.in {
		c.in[k] = append(make([]string, 0, len(v)), v...)
	}
	for k, v := range sh.byClass {
		c.byClass[k] = append(make([]string, 0, len(v)+1), v...)
	}
	for k, v := range sh.byType {
		c.byType[k] = append(make([]string, 0, len(v)+1), v...)
	}
	for k, v := range sh.outT {
		c.outT[k] = append(make([]string, 0, len(v)), v...)
	}
	for k, v := range sh.inT {
		c.inT[k] = append(make([]string, 0, len(v)), v...)
	}
	return c
}

// traceBucket groups the shards of traces that hash to one root slot.
type traceBucket struct {
	epoch  uint64
	shards map[string]*traceShard
}

// GraphCopyStats counts the copy-on-write work a mutable graph has done
// since construction: how many trace shards (and the records inside them)
// were cloned because a snapshot froze the previous version. Divided by
// the number of snapshots published this measures the amortized publish
// cost the MVCC design promises to keep sub-linear.
type GraphCopyStats struct {
	Shards uint64
	Nodes  uint64
	Edges  uint64
}

// Graph is an in-memory provenance graph: nodes keyed by ID with
// adjacency lists for incoming and outgoing relation edges, sharded by
// trace (every record carries an AppID and edges never cross traces, so
// a trace shard is a self-contained subgraph).
//
// The graph holds only the HOT tier: traces the store demotes to sealed
// on-disk segments leave the graph entirely (DropTrace, then
// EvictRouting for their record-ID router entries) and come back on
// demand (RestoreTrace), so resident memory — shards AND router — tracks
// the working set, not the total trace count. ID-based reads of demoted
// records resolve through the segments' row-ID bloom filters instead of
// the router.
//
// A Graph is either mutable (the store's single working graph, mutated
// under the store's write serialization) or frozen (returned by
// Snapshot/Trace). Frozen graphs are deeply immutable and safe for
// concurrent readers with no locking and unbounded retention; mutating
// methods on them fail with ErrFrozen. Mutating the working graph never
// disturbs previously taken snapshots: shards are copied on first write
// after each Snapshot call (structural sharing, see traceShard).
type Graph struct {
	epoch   uint64
	frozen  bool
	nNodes  int
	nEdges  int
	buckets [graphBuckets]*traceBucket
	router  *router
	// ix counts index hits/misses; shared (like the router) between a
	// working graph and its snapshots. noIndex disables index-backed
	// reads, for the scan ablation; posting lists are still maintained.
	ix      *indexCounters
	noIndex bool

	// Copy-on-write accounting, meaningful on the working graph only.
	// Atomics because Store.Stats reads them concurrently with writers.
	copiedShards atomic.Uint64
	copiedNodes  atomic.Uint64
	copiedEdges  atomic.Uint64
}

// NewGraph returns an empty mutable graph.
func NewGraph() *Graph {
	return &Graph{router: newRouter(), ix: &indexCounters{}}
}

// NumNodes reports the number of nodes in the graph.
func (g *Graph) NumNodes() int { return g.nNodes }

// NumEdges reports the number of relation edges in the graph.
func (g *Graph) NumEdges() int { return g.nEdges }

// Frozen reports whether the graph is an immutable snapshot.
func (g *Graph) Frozen() bool { return g.frozen }

// Snapshot returns an immutable point-in-time view of the graph sharing
// all trace shards with g, then advances g's epoch so the next mutation
// of each trace copies that trace's shard first. Cost is O(graphBuckets)
// pointer copies regardless of graph size. Calling Snapshot on a frozen
// graph returns it unchanged.
func (g *Graph) Snapshot() *Graph {
	if g.frozen {
		return g
	}
	snap := &Graph{
		epoch:   g.epoch,
		frozen:  true,
		nNodes:  g.nNodes,
		nEdges:  g.nEdges,
		buckets: g.buckets,
		router:  g.router,
		ix:      g.ix,
		noIndex: g.noIndex,
	}
	g.epoch++
	return snap
}

// CopyStats returns the cumulative copy-on-write counters.
func (g *Graph) CopyStats() GraphCopyStats {
	return GraphCopyStats{
		Shards: g.copiedShards.Load(),
		Nodes:  g.copiedNodes.Load(),
		Edges:  g.copiedEdges.Load(),
	}
}

// shard returns the trace's shard for reading, or nil.
func (g *Graph) shard(appID string) *traceShard {
	b := g.buckets[fnv32(appID)%graphBuckets]
	if b == nil {
		return nil
	}
	return b.shards[appID]
}

// shardOf resolves the shard owning a record ID via the router. The
// router may know IDs newer than this graph (it is shared with the
// working graph), so a nil shard or an ID missing from the shard simply
// means "not visible in this version".
func (g *Graph) shardOf(id string) *traceShard {
	app, ok := g.router.get(id)
	if !ok {
		return nil
	}
	return g.shard(app)
}

// shardForWrite returns the trace's shard for mutation, copying the
// bucket and the shard out of frozen epochs as needed.
func (g *Graph) shardForWrite(appID string) *traceShard {
	bi := fnv32(appID) % graphBuckets
	b := g.buckets[bi]
	switch {
	case b == nil:
		b = &traceBucket{epoch: g.epoch, shards: make(map[string]*traceShard)}
		g.buckets[bi] = b
	case b.epoch != g.epoch:
		nb := &traceBucket{epoch: g.epoch, shards: make(map[string]*traceShard, len(b.shards)+1)}
		for k, v := range b.shards {
			nb.shards[k] = v
		}
		b = nb
		g.buckets[bi] = b
	}
	sh := b.shards[appID]
	switch {
	case sh == nil:
		sh = newTraceShard(g.epoch)
		b.shards[appID] = sh
	case sh.epoch != g.epoch:
		sh = sh.clone(g.epoch)
		g.copiedShards.Add(1)
		g.copiedNodes.Add(uint64(len(sh.nodes)))
		g.copiedEdges.Add(uint64(len(sh.edges)))
		b.shards[appID] = sh
	}
	return sh
}

// insertSorted inserts id into a sorted slice, keeping it sorted. The
// caller owns the slice (post-clone copies are private to the epoch), so
// insertion shifts in place.
func insertSorted(ids []string, id string) []string {
	pos := sort.SearchStrings(ids, id)
	ids = append(ids, "")
	copy(ids[pos+1:], ids[pos:])
	ids[pos] = id
	return ids
}

// AddNode inserts a node. It rejects invalid nodes and duplicate IDs
// (record IDs are immutable once written to the provenance store).
func (g *Graph) AddNode(n *Node) error {
	if err := n.Validate(); err != nil {
		return err
	}
	if g.frozen {
		return ErrFrozen
	}
	if app, ok := g.router.get(n.ID); ok {
		if sh := g.shard(app); sh != nil {
			if _, isEdge := sh.edges[n.ID]; isEdge {
				return fmt.Errorf("provenance: node ID %s collides with an edge ID", n.ID)
			}
		}
		return fmt.Errorf("provenance: duplicate node ID %s: %w", n.ID, ErrDuplicate)
	}
	sh := g.shardForWrite(n.AppID)
	sh.nodes[n.ID] = n
	sh.nodeIDs = insertSorted(sh.nodeIDs, n.ID)
	sh.byClass[n.Class] = insertSorted(sh.byClass[n.Class], n.ID)
	sh.byType[n.Type] = insertSorted(sh.byType[n.Type], n.ID)
	sh.ver++
	g.router.put(n.ID, n.AppID)
	g.nNodes++
	return nil
}

// UpdateNode replaces the stored node that shares n's ID. The class, type
// and app ID must not change: a provenance record's identity is fixed, only
// attribute enrichment is allowed.
func (g *Graph) UpdateNode(n *Node) error {
	if err := n.Validate(); err != nil {
		return err
	}
	if g.frozen {
		return ErrFrozen
	}
	old := g.Node(n.ID)
	if old == nil {
		return fmt.Errorf("provenance: update of unknown node %s", n.ID)
	}
	if old.Class != n.Class || old.Type != n.Type || old.AppID != n.AppID {
		return fmt.Errorf("provenance: update of node %s changes identity (class/type/appID)", n.ID)
	}
	sh := g.shardForWrite(n.AppID)
	sh.nodes[n.ID] = n
	sh.ver++
	return nil
}

// AddEdge inserts a relation edge. Both endpoints must already exist and
// belong to the same trace as the edge.
func (g *Graph) AddEdge(e *Edge) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if g.frozen {
		return ErrFrozen
	}
	if app, ok := g.router.get(e.ID); ok {
		if sh := g.shard(app); sh != nil {
			if _, isNode := sh.nodes[e.ID]; isNode {
				return fmt.Errorf("provenance: edge ID %s collides with a node ID", e.ID)
			}
		}
		return fmt.Errorf("provenance: duplicate edge ID %s: %w", e.ID, ErrDuplicate)
	}
	src := g.Node(e.Source)
	if src == nil {
		return fmt.Errorf("provenance: edge %s references unknown source %s", e.ID, e.Source)
	}
	dst := g.Node(e.Target)
	if dst == nil {
		return fmt.Errorf("provenance: edge %s references unknown target %s", e.ID, e.Target)
	}
	if src.AppID != e.AppID || dst.AppID != e.AppID {
		return fmt.Errorf("provenance: edge %s crosses traces (%s: %s -> %s: %s)",
			e.ID, e.AppID, src.AppID, e.Target, dst.AppID)
	}
	sh := g.shardForWrite(e.AppID)
	sh.edges[e.ID] = e
	sh.out[e.Source] = insertSorted(sh.out[e.Source], e.ID)
	sh.in[e.Target] = insertSorted(sh.in[e.Target], e.ID)
	sh.outT[adjKey{e.Source, e.Type}] = insertSorted(sh.outT[adjKey{e.Source, e.Type}], e.ID)
	sh.inT[adjKey{e.Target, e.Type}] = insertSorted(sh.inT[adjKey{e.Target, e.Type}], e.ID)
	sh.edgeIDs = insertSorted(sh.edgeIDs, e.ID)
	sh.ver++
	g.router.put(e.ID, e.AppID)
	g.nEdges++
	return nil
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id string) *Node {
	sh := g.shardOf(id)
	if sh == nil {
		return nil
	}
	return sh.nodes[id]
}

// Edge returns the edge with the given ID, or nil.
func (g *Graph) Edge(id string) *Edge {
	sh := g.shardOf(id)
	if sh == nil {
		return nil
	}
	return sh.edges[id]
}

// TraceVersion returns the monotonic version of one trace: the number of
// mutating operations (node adds, updates, edge adds) applied to it in
// this graph version. Zero means the trace is absent.
func (g *Graph) TraceVersion(appID string) uint64 {
	sh := g.shard(appID)
	if sh == nil {
		return 0
	}
	return sh.ver
}

// TraceOf resolves the trace a record ID belongs to in this graph
// version. ok is false when the ID is not visible here (including IDs
// written after this snapshot was taken).
func (g *Graph) TraceOf(id string) (appID string, ok bool) {
	app, ok := g.router.get(id)
	if !ok {
		return "", false
	}
	sh := g.shard(app)
	if sh == nil {
		return "", false
	}
	if _, ok := sh.nodes[id]; ok {
		return app, true
	}
	if _, ok := sh.edges[id]; ok {
		return app, true
	}
	return "", false
}

// HasEdge reports whether an edge of the given type exists between the two
// nodes in the given orientation. This is the primitive the paper uses to
// verify an internal control: "a business control point is satisfied if
// certain vertices and edges exist in the provenance graph". Allocation
// free: the adjacency list is scanned in place.
func (g *Graph) HasEdge(source, edgeType, target string) bool {
	sh := g.shardOf(source)
	if sh == nil {
		return false
	}
	if !g.noIndex {
		for _, eid := range sh.outT[adjKey{source, edgeType}] {
			if sh.edges[eid].Target == target {
				return true
			}
		}
		return false
	}
	for _, eid := range sh.out[source] {
		e := sh.edges[eid]
		if e.Type == edgeType && e.Target == target {
			return true
		}
	}
	return false
}

// Edges returns the edges touching the node in the given direction,
// filtered by edge type when edgeType is non-empty. The result is a fresh
// slice sorted by edge ID; adjacency lists are maintained sorted at
// insert time, so no sort happens here. A typed lookup reads the typed
// posting list: the result is pre-sized exactly and edges of other types
// are never touched.
func (g *Graph) Edges(nodeID string, dir Direction, edgeType string) []*Edge {
	sh := g.shardOf(nodeID)
	if sh == nil {
		return nil
	}
	typed := edgeType != "" && !g.noIndex
	if typed {
		g.ix.edgeHits.Add(1)
	} else {
		g.ix.edgeScans.Add(1)
	}
	match := func(e *Edge) bool { return edgeType == "" || e.Type == edgeType }
	switch dir {
	case Out, In:
		if typed {
			m := sh.outT
			if dir == In {
				m = sh.inT
			}
			ids := m[adjKey{nodeID, edgeType}]
			res := make([]*Edge, len(ids))
			for i, id := range ids {
				res[i] = sh.edges[id]
			}
			return res
		}
		ids := sh.out[nodeID]
		if dir == In {
			ids = sh.in[nodeID]
		}
		res := make([]*Edge, 0, len(ids))
		for _, id := range ids {
			if e := sh.edges[id]; match(e) {
				res = append(res, e)
			}
		}
		return res
	default:
		// Merge the two sorted lists. Self-loops are rejected at insert,
		// so the lists are disjoint and no dedup is needed.
		out, in := sh.out[nodeID], sh.in[nodeID]
		if typed {
			out = sh.outT[adjKey{nodeID, edgeType}]
			in = sh.inT[adjKey{nodeID, edgeType}]
		}
		res := make([]*Edge, 0, len(out)+len(in))
		i, j := 0, 0
		for i < len(out) || j < len(in) {
			var id string
			if j >= len(in) || (i < len(out) && out[i] < in[j]) {
				id = out[i]
				i++
			} else {
				id = in[j]
				j++
			}
			if e := sh.edges[id]; typed || match(e) {
				res = append(res, e)
			}
		}
		return res
	}
}

// Neighbors returns the nodes reachable from nodeID over edges of the
// given type and direction, sorted by node ID.
func (g *Graph) Neighbors(nodeID string, dir Direction, edgeType string) []*Node {
	sh := g.shardOf(nodeID)
	if sh == nil {
		return nil
	}
	var ids []string
	add := func(id string) {
		pos := sort.SearchStrings(ids, id)
		if pos < len(ids) && ids[pos] == id {
			return
		}
		ids = append(ids, "")
		copy(ids[pos+1:], ids[pos:])
		ids[pos] = id
	}
	// A typed traversal walks the typed posting lists, so edges of other
	// types are never loaded.
	typed := edgeType != "" && !g.noIndex
	outIDs, inIDs := sh.out[nodeID], sh.in[nodeID]
	if typed {
		outIDs = sh.outT[adjKey{nodeID, edgeType}]
		inIDs = sh.inT[adjKey{nodeID, edgeType}]
	}
	if dir == Out || dir == Both {
		for _, eid := range outIDs {
			if e := sh.edges[eid]; typed || edgeType == "" || e.Type == edgeType {
				add(e.Target)
			}
		}
	}
	if dir == In || dir == Both {
		for _, eid := range inIDs {
			if e := sh.edges[eid]; typed || edgeType == "" || e.Type == edgeType {
				add(e.Source)
			}
		}
	}
	res := make([]*Node, len(ids))
	for i, id := range ids {
		res[i] = sh.nodes[id]
	}
	return res
}

// Nodes returns all nodes matching the filter, sorted by ID. A zero-value
// filter matches everything. Trace-scoped filters iterate the trace's
// pre-sorted shard and cost O(trace size) with no sorting; class- or
// type-constrained filters are served from the shard posting lists and
// cost O(matches) instead.
func (g *Graph) Nodes(f NodeFilter) []*Node {
	if f.AppID != "" {
		sh := g.shard(f.AppID)
		if sh == nil {
			return nil
		}
		if res, ok := g.indexedNodes(sh, f); ok {
			return res
		}
		g.ix.nodeScans.Add(1)
		var res []*Node
		for _, id := range sh.nodeIDs {
			if n := sh.nodes[id]; f.Matches(n) {
				res = append(res, n)
			}
		}
		return res
	}
	indexed := !g.noIndex && (f.Type != "" || f.Class != ClassInvalid)
	if indexed {
		g.ix.nodeHits.Add(1)
	} else {
		g.ix.nodeScans.Add(1)
	}
	var res []*Node
	for _, b := range g.buckets {
		if b == nil {
			continue
		}
		for _, sh := range b.shards {
			if indexed {
				ids, residual, _ := sh.posting(f)
				for _, id := range ids {
					if n := sh.nodes[id]; !residual || n.Class == f.Class {
						res = append(res, n)
					}
				}
				continue
			}
			for _, id := range sh.nodeIDs {
				if n := sh.nodes[id]; f.Matches(n) {
					res = append(res, n)
				}
			}
		}
	}
	sort.Slice(res, func(i, j int) bool { return res[i].ID < res[j].ID })
	return res
}

// AllEdges returns all edges matching the filter, sorted by ID.
// Trace-scoped filters iterate the trace's pre-sorted edge index instead
// of scanning every edge in the store.
func (g *Graph) AllEdges(f EdgeFilter) []*Edge {
	if f.AppID != "" {
		sh := g.shard(f.AppID)
		if sh == nil {
			return nil
		}
		var res []*Edge
		for _, id := range sh.edgeIDs {
			if e := sh.edges[id]; f.Matches(e) {
				res = append(res, e)
			}
		}
		return res
	}
	var res []*Edge
	for _, b := range g.buckets {
		if b == nil {
			continue
		}
		for _, sh := range b.shards {
			for _, id := range sh.edgeIDs {
				if e := sh.edges[id]; f.Matches(e) {
					res = append(res, e)
				}
			}
		}
	}
	sort.Slice(res, func(i, j int) bool { return res[i].ID < res[j].ID })
	return res
}

// NodeFilter selects nodes by class, type and/or trace. Empty fields match
// any value.
type NodeFilter struct {
	Class Class
	Type  string
	AppID string
}

// Matches reports whether the node satisfies every set field.
func (f NodeFilter) Matches(n *Node) bool {
	if n == nil {
		return false
	}
	if f.Class != ClassInvalid && n.Class != f.Class {
		return false
	}
	if f.Type != "" && n.Type != f.Type {
		return false
	}
	if f.AppID != "" && n.AppID != f.AppID {
		return false
	}
	return true
}

// EdgeFilter selects edges by type and/or trace. Empty fields match any
// value.
type EdgeFilter struct {
	Type  string
	AppID string
}

// Matches reports whether the edge satisfies every set field.
func (f EdgeFilter) Matches(e *Edge) bool {
	if e == nil {
		return false
	}
	if f.Type != "" && e.Type != f.Type {
		return false
	}
	if f.AppID != "" && e.AppID != f.AppID {
		return false
	}
	return true
}

// Trace extracts the subgraph of a single process execution trace: all
// nodes and edges whose AppID matches. The returned graph is a frozen
// snapshot sharing record pointers with g. Extracting from a frozen graph
// shares the trace's shard outright (O(1)); extracting from a mutable
// graph copies the shard so later writes to g cannot leak in.
func (g *Graph) Trace(appID string) *Graph {
	t := &Graph{frozen: true, router: g.router, ix: g.ix, noIndex: g.noIndex}
	sh := g.shard(appID)
	if sh == nil {
		return t
	}
	if !g.frozen {
		sh = sh.clone(sh.epoch)
	}
	bi := fnv32(appID) % graphBuckets
	t.buckets[bi] = &traceBucket{shards: map[string]*traceShard{appID: sh}}
	t.nNodes = len(sh.nodes)
	t.nEdges = len(sh.edges)
	return t
}

// NumTraces reports the number of resident trace shards.
func (g *Graph) NumTraces() int {
	n := 0
	for _, b := range g.buckets {
		if b != nil {
			n += len(b.shards)
		}
	}
	return n
}

// TraceHint resolves a record ID to its owning trace through the shared
// router alone, without requiring the trace's shard to be resident. The
// store's tiering layer uses it to route ID-based reads to cold traces;
// in-graph visibility checks should use TraceOf instead.
func (g *Graph) TraceHint(id string) (appID string, ok bool) {
	return g.router.get(id)
}

// DropTrace removes a trace's shard from the graph (demotion to a sealed
// segment). Router entries for the trace's records are NOT touched here;
// the store evicts them separately with EvictRouting once the sealed
// segment is registered and can answer ID-based reads itself. Previously
// published snapshots are untouched: the bucket is cloned out of frozen
// epochs first. Returns false when the trace is not resident.
func (g *Graph) DropTrace(appID string) bool {
	if g.frozen {
		return false
	}
	bi := fnv32(appID) % graphBuckets
	b := g.buckets[bi]
	if b == nil {
		return false
	}
	sh := b.shards[appID]
	if sh == nil {
		return false
	}
	if b.epoch != g.epoch {
		nb := &traceBucket{epoch: g.epoch, shards: make(map[string]*traceShard, len(b.shards))}
		for k, v := range b.shards {
			nb.shards[k] = v
		}
		b = nb
		g.buckets[bi] = b
	}
	delete(b.shards, appID)
	g.nNodes -= len(sh.nodes)
	g.nEdges -= len(sh.edges)
	return true
}

// Vacuum rebuilds every bucket's shard map at its current size. Go maps
// never release bucket arrays on delete, so after a mass demotion
// (many DropTrace calls) the buckets would keep their peak footprint
// forever; rebuilding them is what actually returns the memory.
// Published snapshots hold their own bucket pointers and are untouched.
// No-op on frozen graphs.
func (g *Graph) Vacuum() {
	if g.frozen {
		return
	}
	for bi, b := range g.buckets {
		if b == nil {
			continue
		}
		nb := &traceBucket{epoch: g.epoch, shards: make(map[string]*traceShard, len(b.shards))}
		for k, v := range b.shards {
			nb.shards[k] = v
		}
		g.buckets[bi] = nb
	}
}

// EvictRouting removes the given record IDs from the shared record-ID
// router. The router is shared by the working graph and every snapshot,
// so eviction is global: it must only run once the records' sealed
// segment is registered and serves ID-based reads, and only for traces
// no snapshot still needs to route by raw ID. Trace-level reads (by app
// ID) never touch the router and are unaffected. Without eviction the
// router grows with every record ever written — linear in total trace
// count — which is exactly the memory curve tiering exists to flatten.
// A later write to the trace promotes it, and RestoreTrace re-inserts
// the entries, so duplicate-ID detection for redelivered events still
// holds (promotion is keyed by app ID, not by the router).
func (g *Graph) EvictRouting(ids []string) {
	g.router.drop(ids)
}

// RestoreTrace rebuilds a demoted trace's shard from its sealed rows and
// pins the trace's version counter to the sealed value, so hot and cold
// reads agree on versions. It bypasses AddNode/AddEdge's router duplicate
// checks — the router deliberately still knows the demoted IDs — but
// keeps their ordering requirement: nodes must precede the edges that
// reference them. Restoring over a resident shard is an error; the store
// serializes demotion and promotion so the case is always a caller bug.
func (g *Graph) RestoreTrace(appID string, nodes []*Node, edges []*Edge, ver uint64) error {
	if g.frozen {
		return ErrFrozen
	}
	if g.shard(appID) != nil {
		return fmt.Errorf("provenance: restore of resident trace %s", appID)
	}
	sh := g.shardForWrite(appID)
	for _, n := range nodes {
		if n == nil || n.AppID != appID {
			return fmt.Errorf("provenance: restore of trace %s given foreign node", appID)
		}
		if _, dup := sh.nodes[n.ID]; dup {
			continue
		}
		sh.nodes[n.ID] = n
		sh.nodeIDs = insertSorted(sh.nodeIDs, n.ID)
		sh.byClass[n.Class] = insertSorted(sh.byClass[n.Class], n.ID)
		sh.byType[n.Type] = insertSorted(sh.byType[n.Type], n.ID)
		g.router.put(n.ID, appID)
		g.nNodes++
	}
	for _, e := range edges {
		if e == nil || e.AppID != appID {
			return fmt.Errorf("provenance: restore of trace %s given foreign edge", appID)
		}
		if _, dup := sh.edges[e.ID]; dup {
			continue
		}
		if _, ok := sh.nodes[e.Source]; !ok {
			return fmt.Errorf("provenance: restored edge %s references missing source %s", e.ID, e.Source)
		}
		if _, ok := sh.nodes[e.Target]; !ok {
			return fmt.Errorf("provenance: restored edge %s references missing target %s", e.ID, e.Target)
		}
		sh.edges[e.ID] = e
		sh.out[e.Source] = insertSorted(sh.out[e.Source], e.ID)
		sh.in[e.Target] = insertSorted(sh.in[e.Target], e.ID)
		sh.outT[adjKey{e.Source, e.Type}] = insertSorted(sh.outT[adjKey{e.Source, e.Type}], e.ID)
		sh.inT[adjKey{e.Target, e.Type}] = insertSorted(sh.inT[adjKey{e.Target, e.Type}], e.ID)
		sh.edgeIDs = insertSorted(sh.edgeIDs, e.ID)
		g.router.put(e.ID, appID)
		g.nEdges++
	}
	sh.ver = ver
	return nil
}

// SetTraceVersion pins a trace's version counter. Log replay uses it to
// apply the opTraceVer entries promotion writes; outside replay the
// counter only ever moves through mutations.
func (g *Graph) SetTraceVersion(appID string, ver uint64) error {
	if g.frozen {
		return ErrFrozen
	}
	g.shardForWrite(appID).ver = ver
	return nil
}

// AppIDs returns the distinct trace identifiers present in the graph,
// sorted lexicographically.
func (g *Graph) AppIDs() []string {
	var ids []string
	for _, b := range g.buckets {
		if b == nil {
			continue
		}
		for id := range b.shards {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// Census summarizes a graph for tests and the experiment harness: node
// counts per class and edge counts per type.
type Census struct {
	Nodes     int
	Edges     int
	ByClass   map[Class]int
	ByType    map[string]int // node type -> count
	EdgeTypes map[string]int // edge type -> count
}

// TakeCensus computes the census of the graph.
func (g *Graph) TakeCensus() Census {
	c := Census{
		Nodes:     g.nNodes,
		Edges:     g.nEdges,
		ByClass:   make(map[Class]int),
		ByType:    make(map[string]int),
		EdgeTypes: make(map[string]int),
	}
	for _, b := range g.buckets {
		if b == nil {
			continue
		}
		for _, sh := range b.shards {
			for _, n := range sh.nodes {
				c.ByClass[n.Class]++
				c.ByType[n.Type]++
			}
			for _, e := range sh.edges {
				c.EdgeTypes[e.Type]++
			}
		}
	}
	return c
}
