package provenance

import (
	"fmt"
	"sort"
)

// Direction selects edge orientation relative to a node when traversing.
type Direction int

const (
	// Out follows edges whose Source is the node.
	Out Direction = iota
	// In follows edges whose Target is the node.
	In
	// Both follows edges in either orientation.
	Both
)

// String returns "out", "in" or "both".
func (d Direction) String() string {
	switch d {
	case Out:
		return "out"
	case In:
		return "in"
	default:
		return "both"
	}
}

// Graph is an in-memory provenance graph: nodes keyed by ID with
// adjacency lists for incoming and outgoing relation edges. Graph is not
// safe for concurrent mutation; the store serializes access to it.
type Graph struct {
	nodes map[string]*Node
	edges map[string]*Edge
	out   map[string][]string // node ID -> edge IDs with Source == node
	in    map[string][]string // node ID -> edge IDs with Target == node
	// byApp indexes node IDs per trace so that per-trace queries (the
	// common case: every control evaluation is trace-scoped) cost O(trace)
	// rather than O(store).
	byApp map[string][]string
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		nodes: make(map[string]*Node),
		edges: make(map[string]*Edge),
		out:   make(map[string][]string),
		in:    make(map[string][]string),
		byApp: make(map[string][]string),
	}
}

// NumNodes reports the number of nodes in the graph.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges reports the number of relation edges in the graph.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode inserts a node. It rejects invalid nodes and duplicate IDs
// (record IDs are immutable once written to the provenance store).
func (g *Graph) AddNode(n *Node) error {
	if err := n.Validate(); err != nil {
		return err
	}
	if _, ok := g.nodes[n.ID]; ok {
		return fmt.Errorf("provenance: duplicate node ID %s", n.ID)
	}
	if _, ok := g.edges[n.ID]; ok {
		return fmt.Errorf("provenance: node ID %s collides with an edge ID", n.ID)
	}
	g.nodes[n.ID] = n
	g.byApp[n.AppID] = append(g.byApp[n.AppID], n.ID)
	return nil
}

// UpdateNode replaces the stored node that shares n's ID. The class, type
// and app ID must not change: a provenance record's identity is fixed, only
// attribute enrichment is allowed.
func (g *Graph) UpdateNode(n *Node) error {
	if err := n.Validate(); err != nil {
		return err
	}
	old, ok := g.nodes[n.ID]
	if !ok {
		return fmt.Errorf("provenance: update of unknown node %s", n.ID)
	}
	if old.Class != n.Class || old.Type != n.Type || old.AppID != n.AppID {
		return fmt.Errorf("provenance: update of node %s changes identity (class/type/appID)", n.ID)
	}
	g.nodes[n.ID] = n
	return nil
}

// AddEdge inserts a relation edge. Both endpoints must already exist and
// belong to the same trace as the edge.
func (g *Graph) AddEdge(e *Edge) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if _, ok := g.edges[e.ID]; ok {
		return fmt.Errorf("provenance: duplicate edge ID %s", e.ID)
	}
	if _, ok := g.nodes[e.ID]; ok {
		return fmt.Errorf("provenance: edge ID %s collides with a node ID", e.ID)
	}
	src, ok := g.nodes[e.Source]
	if !ok {
		return fmt.Errorf("provenance: edge %s references unknown source %s", e.ID, e.Source)
	}
	dst, ok := g.nodes[e.Target]
	if !ok {
		return fmt.Errorf("provenance: edge %s references unknown target %s", e.ID, e.Target)
	}
	if src.AppID != e.AppID || dst.AppID != e.AppID {
		return fmt.Errorf("provenance: edge %s crosses traces (%s: %s -> %s: %s)",
			e.ID, e.AppID, src.AppID, e.Target, dst.AppID)
	}
	g.edges[e.ID] = e
	g.out[e.Source] = append(g.out[e.Source], e.ID)
	g.in[e.Target] = append(g.in[e.Target], e.ID)
	return nil
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id string) *Node { return g.nodes[id] }

// Edge returns the edge with the given ID, or nil.
func (g *Graph) Edge(id string) *Edge { return g.edges[id] }

// HasEdge reports whether an edge of the given type exists between the two
// nodes in the given orientation. This is the primitive the paper uses to
// verify an internal control: "a business control point is satisfied if
// certain vertices and edges exist in the provenance graph".
func (g *Graph) HasEdge(source, edgeType, target string) bool {
	for _, eid := range g.out[source] {
		e := g.edges[eid]
		if e.Type == edgeType && e.Target == target {
			return true
		}
	}
	return false
}

// Edges returns the edges touching the node in the given direction,
// filtered by edge type when edgeType is non-empty. The result is a fresh
// slice sorted by edge ID for determinism.
func (g *Graph) Edges(nodeID string, dir Direction, edgeType string) []*Edge {
	var ids []string
	switch dir {
	case Out:
		ids = g.out[nodeID]
	case In:
		ids = g.in[nodeID]
	default:
		ids = append(append([]string(nil), g.out[nodeID]...), g.in[nodeID]...)
	}
	res := make([]*Edge, 0, len(ids))
	for _, id := range ids {
		e := g.edges[id]
		if edgeType == "" || e.Type == edgeType {
			res = append(res, e)
		}
	}
	sort.Slice(res, func(i, j int) bool { return res[i].ID < res[j].ID })
	return res
}

// Neighbors returns the nodes reachable from nodeID over edges of the
// given type and direction, sorted by node ID.
func (g *Graph) Neighbors(nodeID string, dir Direction, edgeType string) []*Node {
	var res []*Node
	seen := make(map[string]bool)
	add := func(id string) {
		if !seen[id] {
			seen[id] = true
			res = append(res, g.nodes[id])
		}
	}
	if dir == Out || dir == Both {
		for _, eid := range g.out[nodeID] {
			if e := g.edges[eid]; edgeType == "" || e.Type == edgeType {
				add(e.Target)
			}
		}
	}
	if dir == In || dir == Both {
		for _, eid := range g.in[nodeID] {
			if e := g.edges[eid]; edgeType == "" || e.Type == edgeType {
				add(e.Source)
			}
		}
	}
	sort.Slice(res, func(i, j int) bool { return res[i].ID < res[j].ID })
	return res
}

// Nodes returns all nodes matching the filter, sorted by ID. A zero-value
// filter matches everything. Trace-scoped filters use the per-trace index
// and cost O(trace size).
func (g *Graph) Nodes(f NodeFilter) []*Node {
	var res []*Node
	if f.AppID != "" {
		for _, id := range g.byApp[f.AppID] {
			if n := g.nodes[id]; f.Matches(n) {
				res = append(res, n)
			}
		}
		sort.Slice(res, func(i, j int) bool { return res[i].ID < res[j].ID })
		return res
	}
	for _, n := range g.nodes {
		if f.Matches(n) {
			res = append(res, n)
		}
	}
	sort.Slice(res, func(i, j int) bool { return res[i].ID < res[j].ID })
	return res
}

// AllEdges returns all edges matching the filter, sorted by ID.
func (g *Graph) AllEdges(f EdgeFilter) []*Edge {
	var res []*Edge
	for _, e := range g.edges {
		if f.Matches(e) {
			res = append(res, e)
		}
	}
	sort.Slice(res, func(i, j int) bool { return res[i].ID < res[j].ID })
	return res
}

// NodeFilter selects nodes by class, type and/or trace. Empty fields match
// any value.
type NodeFilter struct {
	Class Class
	Type  string
	AppID string
}

// Matches reports whether the node satisfies every set field.
func (f NodeFilter) Matches(n *Node) bool {
	if n == nil {
		return false
	}
	if f.Class != ClassInvalid && n.Class != f.Class {
		return false
	}
	if f.Type != "" && n.Type != f.Type {
		return false
	}
	if f.AppID != "" && n.AppID != f.AppID {
		return false
	}
	return true
}

// EdgeFilter selects edges by type and/or trace. Empty fields match any
// value.
type EdgeFilter struct {
	Type  string
	AppID string
}

// Matches reports whether the edge satisfies every set field.
func (f EdgeFilter) Matches(e *Edge) bool {
	if e == nil {
		return false
	}
	if f.Type != "" && e.Type != f.Type {
		return false
	}
	if f.AppID != "" && e.AppID != f.AppID {
		return false
	}
	return true
}

// Trace extracts the subgraph of a single process execution trace: all
// nodes and edges whose AppID matches. The returned graph shares record
// pointers with g and must be treated as read-only.
func (g *Graph) Trace(appID string) *Graph {
	t := NewGraph()
	for _, id := range g.byApp[appID] {
		n := g.nodes[id]
		t.nodes[n.ID] = n
		t.byApp[appID] = append(t.byApp[appID], n.ID)
	}
	for _, e := range g.edges {
		if e.AppID == appID {
			t.edges[e.ID] = e
			t.out[e.Source] = append(t.out[e.Source], e.ID)
			t.in[e.Target] = append(t.in[e.Target], e.ID)
		}
	}
	return t
}

// AppIDs returns the distinct trace identifiers present in the graph,
// sorted lexicographically.
func (g *Graph) AppIDs() []string {
	// Every edge requires same-trace endpoints, so the node index covers
	// all traces.
	ids := make([]string, 0, len(g.byApp))
	for id := range g.byApp {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Census summarizes a graph for tests and the experiment harness: node
// counts per class and edge counts per type.
type Census struct {
	Nodes     int
	Edges     int
	ByClass   map[Class]int
	ByType    map[string]int // node type -> count
	EdgeTypes map[string]int // edge type -> count
}

// TakeCensus computes the census of the graph.
func (g *Graph) TakeCensus() Census {
	c := Census{
		Nodes:     len(g.nodes),
		Edges:     len(g.edges),
		ByClass:   make(map[Class]int),
		ByType:    make(map[string]int),
		EdgeTypes: make(map[string]int),
	}
	for _, n := range g.nodes {
		c.ByClass[n.Class]++
		c.ByType[n.Type]++
	}
	for _, e := range g.edges {
		c.EdgeTypes[e.Type]++
	}
	return c
}
