// Package provenance defines the business provenance graph data model:
// typed records (Data, Task, Resource, Custom nodes and Relation edges),
// the provenance graph with adjacency indexes, the provenance data model
// (type definitions used to generate the execution object model), and a
// subgraph matcher used to verify internal control points.
//
// The model follows Section II-B of Doganata (ICDE 2011): four node record
// classes plus relation records for edges, each carrying a set of typed
// attributes extracted from application events by recorder clients.
package provenance

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the primitive attribute types supported by the
// provenance data model. The set mirrors what the paper's XML rows carry:
// strings, numbers, booleans and timestamps.
type Kind int

const (
	KindInvalid Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
	KindTime
)

var kindNames = [...]string{
	KindInvalid: "invalid",
	KindString:  "string",
	KindInt:     "int",
	KindFloat:   "float",
	KindBool:    "bool",
	KindTime:    "time",
}

// String returns the lower-case name of the kind, e.g. "string".
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// ParseKind converts a kind name produced by Kind.String back to a Kind.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s && Kind(k) != KindInvalid {
			return Kind(k), nil
		}
	}
	return KindInvalid, fmt.Errorf("provenance: unknown kind %q", s)
}

// Value is a dynamically typed attribute value. The zero Value has
// KindInvalid and represents "absent"; partially managed processes
// routinely produce records with missing attributes, so absence is a
// first-class state rather than an error.
type Value struct {
	kind Kind
	str  string
	num  int64
	flt  float64
	b    bool
	t    time.Time
}

// String constructs a string value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Int constructs an integer value.
func Int(i int64) Value { return Value{kind: KindInt, num: i} }

// Float constructs a floating point value.
func Float(f float64) Value { return Value{kind: KindFloat, flt: f} }

// Bool constructs a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Time constructs a timestamp value, stored in UTC.
func Time(t time.Time) Value { return Value{kind: KindTime, t: t.UTC()} }

// Kind reports the kind of the value; KindInvalid means absent.
func (v Value) Kind() Kind { return v.kind }

// IsZero reports whether the value is absent.
func (v Value) IsZero() bool { return v.kind == KindInvalid }

// Str returns the string payload. It is only meaningful for KindString.
func (v Value) Str() string { return v.str }

// IntVal returns the integer payload. It is only meaningful for KindInt.
func (v Value) IntVal() int64 { return v.num }

// FloatVal returns the float payload; for KindInt it widens the integer.
func (v Value) FloatVal() float64 {
	if v.kind == KindInt {
		return float64(v.num)
	}
	return v.flt
}

// BoolVal returns the boolean payload. It is only meaningful for KindBool.
func (v Value) BoolVal() bool { return v.b }

// TimeVal returns the timestamp payload. Only meaningful for KindTime.
func (v Value) TimeVal() time.Time { return v.t }

// Text renders the value as the lexical form stored in the XML rows of
// Table 1. Absent values render as the empty string.
func (v Value) Text() string {
	switch v.kind {
	case KindString:
		return v.str
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.flt, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindTime:
		return v.t.UTC().Format(time.RFC3339Nano)
	default:
		return ""
	}
}

// ParseValue parses the lexical form produced by Text for the given kind.
func ParseValue(kind Kind, text string) (Value, error) {
	switch kind {
	case KindString:
		return String(text), nil
	case KindInt:
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("provenance: bad int %q: %v", text, err)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Value{}, fmt.Errorf("provenance: bad float %q: %v", text, err)
		}
		return Float(f), nil
	case KindBool:
		b, err := strconv.ParseBool(text)
		if err != nil {
			return Value{}, fmt.Errorf("provenance: bad bool %q: %v", text, err)
		}
		return Bool(b), nil
	case KindTime:
		t, err := time.Parse(time.RFC3339Nano, text)
		if err != nil {
			return Value{}, fmt.Errorf("provenance: bad time %q: %v", text, err)
		}
		return Time(t), nil
	default:
		return Value{}, fmt.Errorf("provenance: cannot parse kind %v", kind)
	}
}

// Equal reports deep equality of two values. Int and Float compare across
// kinds numerically so that a rule written with an integer literal matches
// a float attribute.
func (v Value) Equal(w Value) bool {
	if v.kind == w.kind {
		switch v.kind {
		case KindString:
			return v.str == w.str
		case KindInt:
			return v.num == w.num
		case KindFloat:
			return v.flt == w.flt
		case KindBool:
			return v.b == w.b
		case KindTime:
			return v.t.Equal(w.t)
		default:
			return true // both absent
		}
	}
	if v.isNumeric() && w.isNumeric() {
		return v.FloatVal() == w.FloatVal()
	}
	return false
}

func (v Value) isNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Compare orders two values: -1 if v<w, 0 if equal, +1 if v>w. It returns
// an error when the kinds are not comparable (e.g. bool vs string).
func (v Value) Compare(w Value) (int, error) {
	switch {
	case v.isNumeric() && w.isNumeric():
		a, b := v.FloatVal(), w.FloatVal()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		}
		return 0, nil
	case v.kind == KindString && w.kind == KindString:
		return strings.Compare(v.str, w.str), nil
	case v.kind == KindTime && w.kind == KindTime:
		switch {
		case v.t.Before(w.t):
			return -1, nil
		case v.t.After(w.t):
			return 1, nil
		}
		return 0, nil
	case v.kind == KindBool && w.kind == KindBool:
		switch {
		case !v.b && w.b:
			return -1, nil
		case v.b && !w.b:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("provenance: cannot compare %v to %v", v.kind, w.kind)
}

// Key returns a stable string usable as an index key for the value. Keys
// of different kinds never collide because of the kind prefix; numeric
// kinds share a prefix so int/float lookups agree with Equal.
func (v Value) Key() string {
	switch v.kind {
	case KindString:
		return "s:" + v.str
	case KindInt:
		return "n:" + strconv.FormatFloat(float64(v.num), 'g', -1, 64)
	case KindFloat:
		return "n:" + strconv.FormatFloat(v.flt, 'g', -1, 64)
	case KindBool:
		return "b:" + strconv.FormatBool(v.b)
	case KindTime:
		return "t:" + v.t.UTC().Format(time.RFC3339Nano)
	default:
		return ""
	}
}
