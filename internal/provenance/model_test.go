package provenance

import (
	"strings"
	"testing"
)

// HiringModel builds the provenance data model for the paper's example
// process. Tests across packages reuse it via this exported helper-style
// constructor (it lives in the test file's package here; the canonical
// shared model lives in internal/workload).
func hiringModel(t testing.TB) *Model {
	t.Helper()
	m := NewModel("hiring")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.AddType(&TypeDef{Name: "person", Class: ClassResource}))
	must(m.AddField("person", &FieldDef{Name: "name", Kind: KindString}))
	must(m.AddField("person", &FieldDef{Name: "email", Kind: KindString}))
	must(m.AddField("person", &FieldDef{Name: "manager", Kind: KindString}))
	must(m.AddField("person", &FieldDef{Name: "role", Kind: KindString}))
	must(m.AddType(&TypeDef{Name: "submission", Class: ClassTask}))
	must(m.AddField("submission", &FieldDef{Name: "start", Kind: KindTime}))
	must(m.AddField("submission", &FieldDef{Name: "end", Kind: KindTime}))
	must(m.AddType(&TypeDef{Name: "jobRequisition", Class: ClassData}))
	must(m.AddField("jobRequisition", &FieldDef{Name: "reqID", Kind: KindString, Indexed: true}))
	must(m.AddField("jobRequisition", &FieldDef{Name: "positionType", Kind: KindString}))
	must(m.AddField("jobRequisition", &FieldDef{Name: "position", Kind: KindString}))
	must(m.AddField("jobRequisition", &FieldDef{Name: "dept", Kind: KindString}))
	must(m.AddType(&TypeDef{Name: "approvalStatus", Class: ClassData}))
	must(m.AddField("approvalStatus", &FieldDef{Name: "approved", Kind: KindBool}))
	must(m.AddField("approvalStatus", &FieldDef{Name: "reqID", Kind: KindString, Indexed: true}))
	must(m.AddType(&TypeDef{Name: "controlPoint", Class: ClassCustom}))
	must(m.AddField("controlPoint", &FieldDef{Name: "status", Kind: KindString}))
	must(m.AddRelation(&RelationDef{Name: "submitterOf", SourceType: "person", TargetType: "jobRequisition"}))
	must(m.AddRelation(&RelationDef{Name: "actor", SourceType: "person"}))
	must(m.AddRelation(&RelationDef{Name: "approvalOf", SourceType: "approvalStatus", TargetType: "jobRequisition"}))
	must(m.AddRelation(&RelationDef{Name: "nextTask"}))
	return m
}

func TestModelDeclarations(t *testing.T) {
	m := hiringModel(t)
	if m.Type("jobRequisition") == nil {
		t.Fatal("type lookup failed")
	}
	if m.Type("nope") != nil {
		t.Fatal("lookup of unknown type succeeded")
	}
	if f := m.Type("jobRequisition").Field("reqID"); f == nil || f.Kind != KindString || !f.Indexed {
		t.Fatalf("field decl wrong: %+v", f)
	}
	if r := m.Relation("submitterOf"); r == nil || r.TargetType != "jobRequisition" {
		t.Fatalf("relation decl wrong: %+v", r)
	}
	types := m.Types()
	if len(types) != 5 || types[0].Name != "person" {
		t.Fatalf("Types() order wrong: %v", types)
	}
	rels := m.Relations()
	if len(rels) != 4 || rels[0].Name != "submitterOf" {
		t.Fatalf("Relations() order wrong: %v", rels)
	}
	fields := m.Type("person").Fields()
	if len(fields) != 4 || fields[0].Name != "name" || fields[3].Name != "role" {
		t.Fatalf("Fields() order wrong: %v", fields)
	}
}

func TestModelRejectsBadDeclarations(t *testing.T) {
	m := NewModel("t")
	if err := m.AddType(&TypeDef{Name: "", Class: ClassData}); err == nil {
		t.Error("empty type name accepted")
	}
	if err := m.AddType(&TypeDef{Name: "rel", Class: ClassRelation}); err == nil {
		t.Error("relation-class node type accepted")
	}
	if err := m.AddType(&TypeDef{Name: "doc", Class: ClassData}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddType(&TypeDef{Name: "doc", Class: ClassData}); err == nil {
		t.Error("duplicate type accepted")
	}
	if err := m.AddField("ghost", &FieldDef{Name: "f", Kind: KindString}); err == nil {
		t.Error("field on unknown type accepted")
	}
	if err := m.AddField("doc", &FieldDef{Name: "", Kind: KindString}); err == nil {
		t.Error("empty field name accepted")
	}
	if err := m.AddField("doc", &FieldDef{Name: "f"}); err == nil {
		t.Error("field with invalid kind accepted")
	}
	if err := m.AddField("doc", &FieldDef{Name: "f", Kind: KindString}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddField("doc", &FieldDef{Name: "f", Kind: KindInt}); err == nil {
		t.Error("duplicate field accepted")
	}
	if err := m.AddRelation(&RelationDef{Name: ""}); err == nil {
		t.Error("empty relation name accepted")
	}
	if err := m.AddRelation(&RelationDef{Name: "r", SourceType: "ghost"}); err == nil {
		t.Error("relation with unknown source type accepted")
	}
	if err := m.AddRelation(&RelationDef{Name: "r", TargetType: "ghost"}); err == nil {
		t.Error("relation with unknown target type accepted")
	}
	if err := m.AddRelation(&RelationDef{Name: "r", SourceType: "doc"}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRelation(&RelationDef{Name: "r"}); err == nil {
		t.Error("duplicate relation accepted")
	}
}

func TestModelCheckNode(t *testing.T) {
	m := hiringModel(t)
	good := node("n1", "App01", ClassData, "jobRequisition", map[string]Value{
		"reqID": String("REQ001"), "positionType": String("new"),
	})
	if err := m.CheckNode(good); err != nil {
		t.Fatalf("valid node rejected: %v", err)
	}
	// Missing attributes are fine: partial capture.
	sparse := node("n2", "App01", ClassData, "jobRequisition", nil)
	if err := m.CheckNode(sparse); err != nil {
		t.Fatalf("sparse node rejected: %v", err)
	}
	undeclaredType := node("n3", "App01", ClassData, "invoice", nil)
	if err := m.CheckNode(undeclaredType); err == nil {
		t.Error("undeclared type accepted")
	}
	wrongClass := node("n4", "App01", ClassTask, "jobRequisition", nil)
	if err := m.CheckNode(wrongClass); err == nil {
		t.Error("class mismatch accepted")
	}
	undeclaredAttr := node("n5", "App01", ClassData, "jobRequisition", map[string]Value{
		"salary": Int(90000),
	})
	if err := m.CheckNode(undeclaredAttr); err == nil {
		t.Error("undeclared attribute accepted")
	}
	wrongKind := node("n6", "App01", ClassData, "jobRequisition", map[string]Value{
		"reqID": Int(17),
	})
	if err := m.CheckNode(wrongKind); err == nil {
		t.Error("attribute kind mismatch accepted")
	}
	absentAttr := node("n7", "App01", ClassData, "jobRequisition", map[string]Value{
		"reqID": {},
	})
	if err := m.CheckNode(absentAttr); err != nil {
		t.Errorf("absent attribute value rejected: %v", err)
	}
}

func TestModelCheckEdge(t *testing.T) {
	m := hiringModel(t)
	person := node("p", "A", ClassResource, "person", nil)
	req := node("r", "A", ClassData, "jobRequisition", nil)
	task := node("t", "A", ClassTask, "submission", nil)

	ok := edge("e1", "A", "submitterOf", "p", "r")
	if err := m.CheckEdge(ok, person, req); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := m.CheckEdge(edge("e2", "A", "ghostRel", "p", "r"), person, req); err == nil {
		t.Error("undeclared relation accepted")
	}
	if err := m.CheckEdge(edge("e3", "A", "submitterOf", "t", "r"), task, req); err == nil {
		t.Error("wrong source type accepted")
	}
	if err := m.CheckEdge(edge("e4", "A", "submitterOf", "p", "t"), person, task); err == nil {
		t.Error("wrong target type accepted")
	}
	// actor has unconstrained target: person -> task allowed.
	if err := m.CheckEdge(edge("e5", "A", "actor", "p", "t"), person, task); err != nil {
		t.Errorf("unconstrained target rejected: %v", err)
	}
	// nil endpoints skip endpoint checks (validation before graph insert).
	if err := m.CheckEdge(ok, nil, nil); err != nil {
		t.Errorf("nil endpoints rejected: %v", err)
	}
}

func TestModelIndexedFields(t *testing.T) {
	m := hiringModel(t)
	idx := m.IndexedFields()
	if len(idx) != 2 {
		t.Fatalf("IndexedFields = %v, want 2 entries", idx)
	}
	if idx[0] != [2]string{"approvalStatus", "reqID"} || idx[1] != [2]string{"jobRequisition", "reqID"} {
		t.Fatalf("IndexedFields = %v", idx)
	}
}

func TestModelRelationsFrom(t *testing.T) {
	m := hiringModel(t)
	rels := m.RelationsFrom("person")
	var names []string
	for _, r := range rels {
		names = append(names, r.Name)
	}
	joined := strings.Join(names, ",")
	if joined != "submitterOf,actor,nextTask" {
		t.Fatalf("RelationsFrom(person) = %s", joined)
	}
}
