package provenance

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Class enumerates the record classes of the provenance data model
// (Section II-B of the paper): four node classes plus the relation class
// that represents edges.
type Class int

const (
	ClassInvalid Class = iota
	// ClassData marks business artifacts produced or exchanged during the
	// process: documents, e-mails, database records.
	ClassData
	// ClassTask marks records of process activities that utilize or
	// manipulate data and are executed by resources.
	ClassTask
	// ClassResource marks people, runtimes, or other resources relevant to
	// the selected provenance scope.
	ClassResource
	// ClassCustom marks domain-specific, mostly virtual artifacts such as
	// compliance goals, alerts and control points.
	ClassCustom
	// ClassRelation marks edge records produced by correlation analysis.
	ClassRelation
)

var classNames = [...]string{
	ClassInvalid:  "invalid",
	ClassData:     "data",
	ClassTask:     "task",
	ClassResource: "resource",
	ClassCustom:   "custom",
	ClassRelation: "relation",
}

// String returns the lower-case class name used in the CLASS column of
// the provenance store (Table 1 of the paper).
func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// ParseClass converts a class name back to a Class.
func ParseClass(s string) (Class, error) {
	for c, name := range classNames {
		if name == s && Class(c) != ClassInvalid {
			return Class(c), nil
		}
	}
	return ClassInvalid, fmt.Errorf("provenance: unknown class %q", s)
}

// IsNode reports whether the class is one of the four node classes.
func (c Class) IsNode() bool {
	return c == ClassData || c == ClassTask || c == ClassResource || c == ClassCustom
}

// Node is a provenance graph vertex: one Data, Task, Resource or Custom
// record captured from the underlying IT systems.
type Node struct {
	// ID uniquely identifies the record in the provenance store ("PE3").
	ID string
	// Class is the record class; must satisfy Class.IsNode.
	Class Class
	// Type names the concrete record type within the class, e.g.
	// "jobRequisition" for a data node or "person" for a resource node.
	// Types are declared in the provenance data model (Model).
	Type string
	// AppID identifies the process execution trace the record belongs to,
	// differentiating entities of different traces stored in one table.
	AppID string
	// Timestamp records when the underlying application event occurred.
	Timestamp time.Time
	// Attrs holds the typed attributes extracted from the application
	// event payload, keyed by field name declared in the data model.
	Attrs map[string]Value
}

// Attr returns the named attribute, or an absent Value when the record
// does not carry it (common in partially managed processes).
func (n *Node) Attr(name string) Value {
	if n == nil || n.Attrs == nil {
		return Value{}
	}
	return n.Attrs[name]
}

// SetAttr sets an attribute, allocating the map on first use.
func (n *Node) SetAttr(name string, v Value) {
	if n.Attrs == nil {
		n.Attrs = make(map[string]Value)
	}
	n.Attrs[name] = v
}

// Clone returns a deep copy of the node.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := *n
	if n.Attrs != nil {
		c.Attrs = make(map[string]Value, len(n.Attrs))
		for k, v := range n.Attrs {
			c.Attrs[k] = v
		}
	}
	return &c
}

// Validate checks structural invariants of the node record.
func (n *Node) Validate() error {
	switch {
	case n == nil:
		return fmt.Errorf("provenance: nil node")
	case n.ID == "":
		return fmt.Errorf("provenance: node has empty ID")
	case !n.Class.IsNode():
		return fmt.Errorf("provenance: node %s has non-node class %v", n.ID, n.Class)
	case n.Type == "":
		return fmt.Errorf("provenance: node %s has empty type", n.ID)
	case n.AppID == "":
		return fmt.Errorf("provenance: node %s has empty app ID", n.ID)
	}
	return nil
}

// String renders a compact human-readable description for logs and tests.
func (n *Node) String() string {
	if n == nil {
		return "<nil node>"
	}
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s %s[%s]{", n.Class, n.Type, n.ID, n.AppID)
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", k, n.Attrs[k].Text())
	}
	b.WriteString("}")
	return b.String()
}

// Edge is a relation record: a directed, typed edge between two nodes of
// the same trace, generally produced by correlation analysis ("actor",
// "generates", "submitterOf", ...).
type Edge struct {
	// ID uniquely identifies the relation record in the provenance store.
	ID string
	// Type is the relation type declared in the data model.
	Type string
	// AppID identifies the trace; both endpoints must belong to it.
	AppID string
	// Source and Target reference node IDs.
	Source string
	Target string
	// Timestamp records when the relation was established.
	Timestamp time.Time
	// Attrs holds optional relation attributes (e.g. a correlation score).
	Attrs map[string]Value
}

// Attr returns the named attribute, or an absent Value.
func (e *Edge) Attr(name string) Value {
	if e == nil || e.Attrs == nil {
		return Value{}
	}
	return e.Attrs[name]
}

// SetAttr sets an attribute, allocating the map on first use.
func (e *Edge) SetAttr(name string, v Value) {
	if e.Attrs == nil {
		e.Attrs = make(map[string]Value)
	}
	e.Attrs[name] = v
}

// Clone returns a deep copy of the edge.
func (e *Edge) Clone() *Edge {
	if e == nil {
		return nil
	}
	c := *e
	if e.Attrs != nil {
		c.Attrs = make(map[string]Value, len(e.Attrs))
		for k, v := range e.Attrs {
			c.Attrs[k] = v
		}
	}
	return &c
}

// Validate checks structural invariants of the edge record.
func (e *Edge) Validate() error {
	switch {
	case e == nil:
		return fmt.Errorf("provenance: nil edge")
	case e.ID == "":
		return fmt.Errorf("provenance: edge has empty ID")
	case e.Type == "":
		return fmt.Errorf("provenance: edge %s has empty type", e.ID)
	case e.AppID == "":
		return fmt.Errorf("provenance: edge %s has empty app ID", e.ID)
	case e.Source == "":
		return fmt.Errorf("provenance: edge %s has empty source", e.ID)
	case e.Target == "":
		return fmt.Errorf("provenance: edge %s has empty target", e.ID)
	case e.Source == e.Target:
		return fmt.Errorf("provenance: edge %s is a self loop on %s", e.ID, e.Source)
	}
	return nil
}

// String renders a compact human-readable description for logs and tests.
func (e *Edge) String() string {
	if e == nil {
		return "<nil edge>"
	}
	return fmt.Sprintf("relation/%s %s[%s] %s->%s", e.Type, e.ID, e.AppID, e.Source, e.Target)
}
