// Package xom implements the execution object model of Section II-D: an
// executable object model generated from the provenance data model, so
// that "the nodes and the edges of the graph and their attributes are
// directly linked to XOM objects through getters and setters".
//
// In the paper the XOM is a set of Java classes. Here a Class is a runtime
// descriptor with typed field accessors over provenance nodes, optional
// registered methods (the paper's getManagerGen hashtable example), and
// relation accessors that navigate graph edges. The business object model
// (package bom) verbalizes these members into navigation and action
// phrases, and the rule engine (package rules) resolves phrases back to
// them at compile time.
package xom

import (
	"fmt"
	"sort"

	"repro/internal/provenance"
)

// ObjectModel is the executable object model generated from a provenance
// data model: one Class per node type, plus relation accessors.
type ObjectModel struct {
	model   *provenance.Model
	classes map[string]*Class
	order   []string
}

// Class is the runtime descriptor of one node type.
type Class struct {
	// Name is the class name, identical to the provenance node type.
	Name string
	// NodeClass is the provenance record class of instances.
	NodeClass provenance.Class

	fields    map[string]*Field
	methods   map[string]*Method
	relations map[string]*Relation
	fOrder    []string
	mOrder    []string
	rOrder    []string
}

// Field is a typed attribute accessor (the XOM getter for a data member).
type Field struct {
	// Name is the attribute name in the provenance record.
	Name string
	// Kind is the declared attribute kind.
	Kind provenance.Kind
}

// Get reads the field from an instance. An absent attribute yields the
// zero Value — three-valued rule evaluation treats it as unknown.
func (f *Field) Get(n *provenance.Node) provenance.Value {
	return n.Attr(f.Name)
}

// Method is a registered computation on instances, mirroring the paper's
// action-phrase methods such as getManagerGen. Methods take the instance's
// node and the graph (so they may consult other records) and return a
// value; returning the zero Value means "unknown".
type Method struct {
	// Name identifies the method within its class.
	Name string
	// Kind is the result kind.
	Kind provenance.Kind
	// Fn computes the result.
	Fn func(g *provenance.Graph, n *provenance.Node) (provenance.Value, error)
}

// Relation is a navigation accessor over graph edges: from an instance of
// the owning class, follow edges of EdgeType in Dir to reach instances of
// TargetType.
type Relation struct {
	// Name identifies the accessor ("submitterOf").
	Name string
	// EdgeType is the provenance relation type followed.
	EdgeType string
	// Dir orients the traversal relative to the instance.
	Dir provenance.Direction
	// TargetType is the node type reached (may be empty = any).
	TargetType string
}

// FromModel generates the object model: every node type becomes a Class
// with one Field per declared field; every relation declaration becomes a
// pair of navigation accessors (forward on the source class, reverse on
// the target class when both endpoint types are declared).
func FromModel(m *provenance.Model) (*ObjectModel, error) {
	if m == nil {
		return nil, fmt.Errorf("xom: nil model")
	}
	om := &ObjectModel{model: m, classes: make(map[string]*Class)}
	for _, t := range m.Types() {
		c := &Class{
			Name:      t.Name,
			NodeClass: t.Class,
			fields:    make(map[string]*Field),
			methods:   make(map[string]*Method),
			relations: make(map[string]*Relation),
		}
		for _, fd := range t.Fields() {
			c.fields[fd.Name] = &Field{Name: fd.Name, Kind: fd.Kind}
			c.fOrder = append(c.fOrder, fd.Name)
		}
		om.classes[c.Name] = c
		om.order = append(om.order, c.Name)
	}
	for _, r := range m.Relations() {
		if r.SourceType != "" {
			src := om.classes[r.SourceType]
			if err := src.addRelation(&Relation{
				Name: r.Name, EdgeType: r.Name, Dir: provenance.Out, TargetType: r.TargetType,
			}); err != nil {
				return nil, err
			}
		}
		if r.TargetType != "" {
			dst := om.classes[r.TargetType]
			if err := dst.addRelation(&Relation{
				Name: inverseName(r.Name), EdgeType: r.Name, Dir: provenance.In, TargetType: r.SourceType,
			}); err != nil {
				return nil, err
			}
		}
	}
	return om, nil
}

// inverseName names the reverse accessor for a relation.
func inverseName(rel string) string { return rel + "Inverse" }

func (c *Class) addRelation(r *Relation) error {
	if _, ok := c.relations[r.Name]; ok {
		return fmt.Errorf("xom: class %s: duplicate relation accessor %s", c.Name, r.Name)
	}
	c.relations[r.Name] = r
	c.rOrder = append(c.rOrder, r.Name)
	return nil
}

// Model returns the underlying provenance data model.
func (om *ObjectModel) Model() *provenance.Model { return om.model }

// Class returns the class descriptor for a node type, or nil.
func (om *ObjectModel) Class(name string) *Class { return om.classes[name] }

// Classes returns every class in model declaration order.
func (om *ObjectModel) Classes() []*Class {
	res := make([]*Class, 0, len(om.order))
	for _, n := range om.order {
		res = append(res, om.classes[n])
	}
	return res
}

// RegisterMethod attaches a method to a class, as the paper attaches
// getManagerGen to jobRequisition.
func (om *ObjectModel) RegisterMethod(className string, m *Method) error {
	c := om.classes[className]
	if c == nil {
		return fmt.Errorf("xom: method %s on unknown class %s", m.Name, className)
	}
	if m.Name == "" {
		return fmt.Errorf("xom: class %s: method with empty name", className)
	}
	if m.Kind == provenance.KindInvalid {
		return fmt.Errorf("xom: method %s.%s has invalid result kind", className, m.Name)
	}
	if m.Fn == nil {
		return fmt.Errorf("xom: method %s.%s has nil body", className, m.Name)
	}
	if _, ok := c.methods[m.Name]; ok {
		return fmt.Errorf("xom: class %s: duplicate method %s", className, m.Name)
	}
	if _, ok := c.fields[m.Name]; ok {
		return fmt.Errorf("xom: class %s: method %s collides with a field", className, m.Name)
	}
	c.methods[m.Name] = m
	c.mOrder = append(c.mOrder, m.Name)
	return nil
}

// LookupTableMethod builds a method that resolves a key attribute through
// a fixed table — the paper's hashtable-backed getManagerGen, where dept
// and managerGen are the <key, value> pairs.
func LookupTableMethod(name string, keyField string, table map[string]string) *Method {
	// Copy the table so later caller mutations cannot change semantics.
	own := make(map[string]string, len(table))
	for k, v := range table {
		own[k] = v
	}
	return &Method{
		Name: name,
		Kind: provenance.KindString,
		Fn: func(_ *provenance.Graph, n *provenance.Node) (provenance.Value, error) {
			key := n.Attr(keyField)
			if key.IsZero() {
				return provenance.Value{}, nil
			}
			v, ok := own[key.Str()]
			if !ok {
				return provenance.Value{}, nil
			}
			return provenance.String(v), nil
		},
	}
}

// Field returns the field accessor, or nil.
func (c *Class) Field(name string) *Field { return c.fields[name] }

// Method returns the method, or nil.
func (c *Class) Method(name string) *Method { return c.methods[name] }

// Relation returns the navigation accessor, or nil.
func (c *Class) Relation(name string) *Relation { return c.relations[name] }

// Fields returns the field accessors in declaration order.
func (c *Class) Fields() []*Field {
	res := make([]*Field, 0, len(c.fOrder))
	for _, n := range c.fOrder {
		res = append(res, c.fields[n])
	}
	return res
}

// Methods returns the registered methods in registration order.
func (c *Class) Methods() []*Method {
	res := make([]*Method, 0, len(c.mOrder))
	for _, n := range c.mOrder {
		res = append(res, c.methods[n])
	}
	return res
}

// Relations returns the navigation accessors in declaration order.
func (c *Class) Relations() []*Relation {
	res := make([]*Relation, 0, len(c.rOrder))
	for _, n := range c.rOrder {
		res = append(res, c.relations[n])
	}
	return res
}

// Navigate follows a relation accessor from an instance node, returning
// the reached nodes sorted by ID. Nodes of the wrong type are filtered out
// (edges are typed, but an unconstrained relation may reach several).
func Navigate(g *provenance.Graph, n *provenance.Node, r *Relation) []*provenance.Node {
	if g == nil || n == nil || r == nil {
		return nil
	}
	var res []*provenance.Node
	for _, m := range g.Neighbors(n.ID, r.Dir, r.EdgeType) {
		if r.TargetType == "" || m.Type == r.TargetType {
			res = append(res, m)
		}
	}
	sort.Slice(res, func(i, j int) bool { return res[i].ID < res[j].ID })
	return res
}

// Call invokes a method on an instance node.
func Call(g *provenance.Graph, n *provenance.Node, m *Method) (provenance.Value, error) {
	if m == nil || m.Fn == nil {
		return provenance.Value{}, fmt.Errorf("xom: nil method")
	}
	if n == nil {
		return provenance.Value{}, nil
	}
	return m.Fn(g, n)
}
