package xom

import (
	"testing"

	"repro/internal/provenance"
)

func testModel(t testing.TB) *provenance.Model {
	t.Helper()
	m := provenance.NewModel("hiring")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.AddType(&provenance.TypeDef{Name: "person", Class: provenance.ClassResource}))
	must(m.AddField("person", &provenance.FieldDef{Name: "name", Kind: provenance.KindString}))
	must(m.AddField("person", &provenance.FieldDef{Name: "manager", Kind: provenance.KindString}))
	must(m.AddType(&provenance.TypeDef{Name: "jobRequisition", Class: provenance.ClassData}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{Name: "reqID", Kind: provenance.KindString}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{Name: "dept", Kind: provenance.KindString}))
	must(m.AddRelation(&provenance.RelationDef{Name: "submitterOf", SourceType: "person", TargetType: "jobRequisition"}))
	must(m.AddRelation(&provenance.RelationDef{Name: "touches", SourceType: "person"}))
	return m
}

func TestFromModelGeneratesClasses(t *testing.T) {
	om, err := FromModel(testModel(t))
	if err != nil {
		t.Fatal(err)
	}
	classes := om.Classes()
	if len(classes) != 2 || classes[0].Name != "person" || classes[1].Name != "jobRequisition" {
		t.Fatalf("classes = %v", classes)
	}
	c := om.Class("jobRequisition")
	if c == nil || c.NodeClass != provenance.ClassData {
		t.Fatalf("class lookup = %+v", c)
	}
	f := c.Field("reqID")
	if f == nil || f.Kind != provenance.KindString {
		t.Fatalf("field = %+v", f)
	}
	if c.Field("ghost") != nil {
		t.Error("ghost field found")
	}
	fields := om.Class("person").Fields()
	if len(fields) != 2 || fields[0].Name != "name" {
		t.Fatalf("fields order = %v", fields)
	}
	if om.Class("missing") != nil {
		t.Error("missing class found")
	}
	if om.Model() == nil {
		t.Error("Model() nil")
	}
}

func TestFromModelGeneratesRelationAccessors(t *testing.T) {
	om, err := FromModel(testModel(t))
	if err != nil {
		t.Fatal(err)
	}
	person := om.Class("person")
	fwd := person.Relation("submitterOf")
	if fwd == nil || fwd.Dir != provenance.Out || fwd.TargetType != "jobRequisition" {
		t.Fatalf("forward accessor = %+v", fwd)
	}
	req := om.Class("jobRequisition")
	rev := req.Relation("submitterOfInverse")
	if rev == nil || rev.Dir != provenance.In || rev.TargetType != "person" {
		t.Fatalf("reverse accessor = %+v", rev)
	}
	// "touches" has no target type: forward accessor only.
	if person.Relation("touches") == nil {
		t.Error("unconstrained forward accessor missing")
	}
	rels := person.Relations()
	if len(rels) != 2 {
		t.Fatalf("person relations = %v", rels)
	}
	if _, err := FromModel(nil); err == nil {
		t.Error("nil model accepted")
	}
}

func TestFieldGet(t *testing.T) {
	om, err := FromModel(testModel(t))
	if err != nil {
		t.Fatal(err)
	}
	n := &provenance.Node{ID: "r1", Class: provenance.ClassData, Type: "jobRequisition",
		AppID: "A", Attrs: map[string]provenance.Value{"reqID": provenance.String("REQ1")}}
	f := om.Class("jobRequisition").Field("reqID")
	if got := f.Get(n); got.Str() != "REQ1" {
		t.Fatalf("Get = %v", got)
	}
	// Missing attribute: zero value, not panic.
	if got := om.Class("jobRequisition").Field("dept").Get(n); !got.IsZero() {
		t.Fatalf("missing attr Get = %v", got)
	}
}

func TestNavigate(t *testing.T) {
	om, err := FromModel(testModel(t))
	if err != nil {
		t.Fatal(err)
	}
	g := provenance.NewGraph()
	p := &provenance.Node{ID: "p1", Class: provenance.ClassResource, Type: "person", AppID: "A"}
	r1 := &provenance.Node{ID: "r1", Class: provenance.ClassData, Type: "jobRequisition", AppID: "A"}
	r2 := &provenance.Node{ID: "r2", Class: provenance.ClassData, Type: "jobRequisition", AppID: "A"}
	for _, n := range []*provenance.Node{p, r1, r2} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	for i, tgt := range []string{"r1", "r2"} {
		e := &provenance.Edge{ID: string(rune('a' + i)), Type: "submitterOf", AppID: "A",
			Source: "p1", Target: tgt}
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	fwd := om.Class("person").Relation("submitterOf")
	got := Navigate(g, p, fwd)
	if len(got) != 2 || got[0].ID != "r1" || got[1].ID != "r2" {
		t.Fatalf("Navigate forward = %v", got)
	}
	rev := om.Class("jobRequisition").Relation("submitterOfInverse")
	back := Navigate(g, r1, rev)
	if len(back) != 1 || back[0].ID != "p1" {
		t.Fatalf("Navigate reverse = %v", back)
	}
	if Navigate(nil, p, fwd) != nil || Navigate(g, nil, fwd) != nil || Navigate(g, p, nil) != nil {
		t.Error("nil inputs not handled")
	}
}

func TestNavigateFiltersTargetType(t *testing.T) {
	m := provenance.NewModel("m")
	if err := m.AddType(&provenance.TypeDef{Name: "person", Class: provenance.ClassResource}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddType(&provenance.TypeDef{Name: "doc", Class: provenance.ClassData}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddType(&provenance.TypeDef{Name: "task", Class: provenance.ClassTask}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRelation(&provenance.RelationDef{Name: "touches", SourceType: "person"}); err != nil {
		t.Fatal(err)
	}
	om, err := FromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	g := provenance.NewGraph()
	nodes := []*provenance.Node{
		{ID: "p", Class: provenance.ClassResource, Type: "person", AppID: "A"},
		{ID: "d", Class: provenance.ClassData, Type: "doc", AppID: "A"},
		{ID: "t", Class: provenance.ClassTask, Type: "task", AppID: "A"},
	}
	for _, n := range nodes {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	for i, tgt := range []string{"d", "t"} {
		e := &provenance.Edge{ID: string(rune('a' + i)), Type: "touches", AppID: "A", Source: "p", Target: tgt}
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	// Unconstrained accessor reaches both.
	all := Navigate(g, nodes[0], om.Class("person").Relation("touches"))
	if len(all) != 2 {
		t.Fatalf("unconstrained navigate = %v", all)
	}
	// A manually-built constrained accessor filters by type.
	onlyDocs := Navigate(g, nodes[0], &Relation{Name: "touchesDocs", EdgeType: "touches",
		Dir: provenance.Out, TargetType: "doc"})
	if len(onlyDocs) != 1 || onlyDocs[0].ID != "d" {
		t.Fatalf("constrained navigate = %v", onlyDocs)
	}
}

func TestRegisterMethodAndCall(t *testing.T) {
	om, err := FromModel(testModel(t))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's example: getManagerGen resolves the general manager from
	// a <dept, manager> hashtable.
	table := map[string]string{"dept501": "Jane Smith"}
	m := LookupTableMethod("getManagerGen", "dept", table)
	if err := om.RegisterMethod("jobRequisition", m); err != nil {
		t.Fatal(err)
	}
	table["dept501"] = "MUTATED" // must not affect the registered method

	got := om.Class("jobRequisition").Method("getManagerGen")
	if got == nil || got.Kind != provenance.KindString {
		t.Fatalf("method = %+v", got)
	}
	n := &provenance.Node{ID: "r1", Class: provenance.ClassData, Type: "jobRequisition",
		AppID: "A", Attrs: map[string]provenance.Value{"dept": provenance.String("dept501")}}
	v, err := Call(nil, n, got)
	if err != nil {
		t.Fatal(err)
	}
	if v.Str() != "Jane Smith" {
		t.Fatalf("Call = %v", v)
	}
	// Unknown key or missing key attribute: unknown, not error.
	n2 := n.Clone()
	n2.SetAttr("dept", provenance.String("dept999"))
	if v, err := Call(nil, n2, got); err != nil || !v.IsZero() {
		t.Fatalf("unknown key: %v, %v", v, err)
	}
	n3 := &provenance.Node{ID: "r3", Class: provenance.ClassData, Type: "jobRequisition", AppID: "A"}
	if v, err := Call(nil, n3, got); err != nil || !v.IsZero() {
		t.Fatalf("missing key attr: %v, %v", v, err)
	}
	if v, err := Call(nil, nil, got); err != nil || !v.IsZero() {
		t.Fatalf("nil instance: %v, %v", v, err)
	}
	if _, err := Call(nil, n, nil); err == nil {
		t.Error("nil method accepted")
	}
	if len(om.Class("jobRequisition").Methods()) != 1 {
		t.Error("Methods() wrong")
	}
}

func TestRegisterMethodValidation(t *testing.T) {
	om, err := FromModel(testModel(t))
	if err != nil {
		t.Fatal(err)
	}
	fn := func(*provenance.Graph, *provenance.Node) (provenance.Value, error) {
		return provenance.Value{}, nil
	}
	cases := []struct {
		class string
		m     *Method
	}{
		{"ghost", &Method{Name: "m", Kind: provenance.KindString, Fn: fn}},
		{"person", &Method{Name: "", Kind: provenance.KindString, Fn: fn}},
		{"person", &Method{Name: "m", Fn: fn}},
		{"person", &Method{Name: "m", Kind: provenance.KindString}},
		{"person", &Method{Name: "name", Kind: provenance.KindString, Fn: fn}}, // collides with field
	}
	for i, c := range cases {
		if err := om.RegisterMethod(c.class, c.m); err == nil {
			t.Errorf("case %d: invalid method accepted", i)
		}
	}
	ok := &Method{Name: "m", Kind: provenance.KindString, Fn: fn}
	if err := om.RegisterMethod("person", ok); err != nil {
		t.Fatal(err)
	}
	if err := om.RegisterMethod("person", ok); err == nil {
		t.Error("duplicate method accepted")
	}
}
