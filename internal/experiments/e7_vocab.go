package experiments

import (
	"fmt"
	"time"

	"repro/internal/bom"
	"repro/internal/provenance"
	"repro/internal/rules"
	"repro/internal/xom"
)

// E7VocabScale measures parse+compile time against vocabulary size. A
// synthetic data model grows to V phrase entries around a fixed core (the
// hiring requisition concepts), and the same control text compiles at
// every size. Because the matcher buckets phrases by first token (design
// decision D2), cost should stay near-flat as unrelated vocabulary grows.
// The experiment also plants deliberately overlapping phrases ("position",
// "position type", "position type code") and asserts longest-match keeps
// resolving the control identically.
func E7VocabScale(sizes []int) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Rule compilation vs vocabulary size",
		Paper:   "§II-D verbalization; design decision D2 (longest-match phrases)",
		Columns: []string{"vocab phrases", "parse+compile", "per-phrase overhead"},
	}
	const controlText = `
definitions
  set 'the request' to a job requisition ;
if
  the position type of 'the request' is "new"
  and the approval of 'the request' exists
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
`
	var base time.Duration
	for _, size := range sizes {
		vocab, err := syntheticVocabulary(size)
		if err != nil {
			return nil, err
		}
		const reps = 50
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := rules.Compile(controlText, vocab); err != nil {
				return nil, fmt.Errorf("vocab size %d: %v", size, err)
			}
		}
		per := time.Since(start) / reps
		if base == 0 {
			base = per
		}
		overhead := "baseline"
		if per > base {
			overhead = fmt.Sprintf("+%.0f%%", 100*(float64(per)/float64(base)-1))
		}
		t.AddRow(vocab.Size(), per.String(), overhead)

		// Longest-match correctness under growth: the deliberately
		// overlapping phrases must not change what the control binds to.
		c, err := rules.Compile(controlText, vocab)
		if err != nil {
			return nil, err
		}
		g := provenance.NewGraph()
		if err := seedVocabTrace(g); err != nil {
			return nil, err
		}
		if res := c.Evaluate(g, "T1"); res.Verdict != rules.Satisfied {
			return nil, fmt.Errorf("vocab size %d: verdict %v, want satisfied (%v)",
				size, res.Verdict, res.Notes)
		}
	}
	t.Notes = append(t.Notes,
		"phrase lookup buckets by first token, so unrelated vocabulary adds near-zero cost",
		"overlapping phrases (position / position type / position type code) resolve identically at every size",
	)
	return t, nil
}

// syntheticVocabulary builds a model whose vocabulary has roughly `size`
// phrase entries: the hiring core plus filler types.
func syntheticVocabulary(size int) (*bom.Vocabulary, error) {
	m := provenance.NewModel("synthetic")
	if err := m.AddType(&provenance.TypeDef{Name: "jobRequisition", Class: provenance.ClassData}); err != nil {
		return nil, err
	}
	coreFields := []provenance.FieldDef{
		{Name: "reqID", Kind: provenance.KindString},
		{Name: "positionType", Kind: provenance.KindString},
		{Name: "position", Kind: provenance.KindString},
		{Name: "positionTypeCode", Kind: provenance.KindString},
	}
	for i := range coreFields {
		f := coreFields[i]
		if err := m.AddField("jobRequisition", &f); err != nil {
			return nil, err
		}
	}
	if err := m.AddType(&provenance.TypeDef{Name: "approvalStatus", Class: provenance.ClassData}); err != nil {
		return nil, err
	}
	if err := m.AddField("approvalStatus", &provenance.FieldDef{Name: "approved", Kind: provenance.KindBool}); err != nil {
		return nil, err
	}
	if err := m.AddRelation(&provenance.RelationDef{Name: "approvalOf",
		SourceType: "approvalStatus", TargetType: "jobRequisition"}); err != nil {
		return nil, err
	}
	// Filler: each type contributes ~5 phrase entries.
	for i := 0; len(fillerCount(m)) < size; i++ {
		tn := fmt.Sprintf("fillerType%d", i)
		if err := m.AddType(&provenance.TypeDef{Name: tn, Class: provenance.ClassData}); err != nil {
			return nil, err
		}
		for j := 0; j < 5; j++ {
			f := provenance.FieldDef{Name: fmt.Sprintf("attr%dOf%d", j, i), Kind: provenance.KindString}
			if err := m.AddField(tn, &f); err != nil {
				return nil, err
			}
		}
	}
	om, err := xom.FromModel(m)
	if err != nil {
		return nil, err
	}
	return bom.Verbalize(om, bom.Options{
		ConceptLabels: map[string]string{"jobRequisition": "job requisition"},
		MemberLabels: map[string]string{
			"jobRequisition.positionType":      "position type",
			"jobRequisition.positionTypeCode":  "position type code",
			"jobRequisition.approvalOfInverse": "approval",
		},
	})
}

// fillerCount estimates current phrase entries (fields + relations).
func fillerCount(m *provenance.Model) []struct{} {
	n := 0
	for _, t := range m.Types() {
		n += len(t.Fields())
	}
	n += 2 * len(m.Relations())
	return make([]struct{}, n)
}

// seedVocabTrace builds the minimal satisfied trace for the E7 control.
func seedVocabTrace(g *provenance.Graph) error {
	req := &provenance.Node{ID: "r", Class: provenance.ClassData, Type: "jobRequisition",
		AppID: "T1", Attrs: map[string]provenance.Value{
			"positionType": provenance.String("new")}}
	if err := g.AddNode(req); err != nil {
		return err
	}
	ap := &provenance.Node{ID: "a", Class: provenance.ClassData, Type: "approvalStatus",
		AppID: "T1", Attrs: map[string]provenance.Value{
			"approved": provenance.Bool(true)}}
	if err := g.AddNode(ap); err != nil {
		return err
	}
	return g.AddEdge(&provenance.Edge{ID: "e", Type: "approvalOf", AppID: "T1",
		Source: "a", Target: "r"})
}
