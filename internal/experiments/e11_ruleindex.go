package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/provenance"
	"repro/internal/workload"
)

// E11RuleIndex measures index-accelerated rule evaluation (design
// decision D8): per-shard secondary indexes plus the binder planner and
// cross-control binding reuse, against the -no-rule-indexes full-scan
// ablation. One hiring trace is padded with bystander person records to
// each target size, 16 controls (the domain's three rule texts cycled
// under distinct IDs) are deployed, and the per-check latency of the
// full control set is averaged with the result cache off.
func E11RuleIndex(sizes []int, nControls int) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "Index-accelerated rule evaluation vs full scan",
		Paper: "§III: controls as sub-graph queries; ROADMAP north-star (evaluation fast as the hardware allows)",
		Columns: []string{"trace nodes", "controls", "check idx", "check scan",
			"speedup", "reuse ratio"},
	}
	d, err := workload.Hiring()
	if err != nil {
		return nil, err
	}
	for _, size := range sizes {
		var lat [2]time.Duration // indexed, scan
		var reuse float64
		for mode := 0; mode < 2; mode++ {
			ms, err := e11Measure(d, size, nControls, mode == 1)
			if err != nil {
				return nil, err
			}
			lat[mode] = ms.perCheck
			if mode == 0 {
				reuse = ms.reuse
			}
		}
		speedup := float64(lat[1]) / float64(lat[0])
		t.AddRow(size, nControls, lat[0].String(), lat[1].String(),
			fmt.Sprintf("%.1fx", speedup), fmt.Sprintf("%.3f", reuse))
	}
	t.Notes = append(t.Notes,
		"idx: type posting lists + binder planner + cross-control binding reuse; scan: -no-rule-indexes ablation",
		"binding caches key on the store's per-trace version counter, so they invalidate with the result cache")
	return t, nil
}

type e11Measurement struct {
	perCheck time.Duration
	reuse    float64
}

func e11Measure(d *workload.Domain, traceNodes, nControls int, disable bool) (e11Measurement, error) {
	sys, err := core.New(d, core.Config{
		DisableCheckCache:  true,
		DisableRuleIndexes: disable,
	})
	if err != nil {
		return e11Measurement{}, err
	}
	defer sys.Close()
	res := d.Simulate(workload.SimOptions{Seed: 99, Traces: 4, ViolationRate: 0.3, Visibility: 1.0})
	if err := sys.Ingest(res.Events); err != nil {
		return e11Measurement{}, err
	}
	if err := sys.CorrelateAll(); err != nil {
		return e11Measurement{}, err
	}
	app := sys.Store.AppIDs()[0]
	var have int
	if err := sys.Store.View(func(g *provenance.Graph) error {
		have = len(g.Nodes(provenance.NodeFilter{AppID: app}))
		return nil
	}); err != nil {
		return e11Measurement{}, err
	}
	for i := have; i < traceNodes; i++ {
		err := sys.Store.PutNode(&provenance.Node{
			ID: fmt.Sprintf("e11-pad-%05d", i), Class: provenance.ClassResource,
			Type: "person", AppID: app,
			Attrs: map[string]provenance.Value{
				"name":  provenance.String(fmt.Sprintf("Pad Person %d", i)),
				"email": provenance.String(fmt.Sprintf("pad%d@example.com", i)),
			},
		})
		if err != nil {
			return e11Measurement{}, err
		}
	}
	for _, cp := range sys.Registry.List() {
		if err := sys.Registry.Remove(cp.ID); err != nil {
			return e11Measurement{}, err
		}
	}
	for i := 0; i < nControls; i++ {
		cs := d.Controls[i%len(d.Controls)]
		if _, err := sys.Registry.Deploy(fmt.Sprintf("e11-%02d", i), cs.Name, cs.Text); err != nil {
			return e11Measurement{}, err
		}
	}
	// Warm up once (populates binding caches at the current trace
	// version, as the continuous checker would), then measure.
	if _, err := sys.Registry.Check(app); err != nil {
		return e11Measurement{}, err
	}
	const iters = 50
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := sys.Registry.Check(app); err != nil {
			return e11Measurement{}, err
		}
	}
	per := time.Since(start) / iters
	return e11Measurement{perCheck: per, reuse: sys.Registry.BindingStats().ReuseRatio()}, nil
}
