package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/bom"
	"repro/internal/rules"
	"repro/internal/workload"
	"repro/internal/xom"
)

// E4Authoring measures the Fig 3 authoring pipeline: generating the XOM
// from the provenance data model, verbalizing it into the BOM vocabulary,
// and parsing + compiling each of the nine shipped internal controls. The
// per-control compile cost is what a business user pays per edit in the
// rule editor — milliseconds, against the code-change cycle of the
// baseline (see E8).
func E4Authoring() (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Authoring pipeline: model -> XOM -> BOM -> compiled control",
		Paper:   "Fig 3 (steps of creating and editing internal controls), §II-D",
		Columns: []string{"domain", "control", "rule lines", "rule words", "parse+compile", "vocab size"},
	}
	builders := []func() (*workload.Domain, error){
		workload.Hiring, workload.Procurement, workload.Claims,
	}
	var totalVerbalize time.Duration
	for _, build := range builders {
		d, err := build()
		if err != nil {
			return nil, err
		}
		// Re-run the generation steps to time them (the domain constructor
		// already did them once).
		start := time.Now()
		om, err := xom.FromModel(d.Model)
		if err != nil {
			return nil, err
		}
		xomTime := time.Since(start)
		start = time.Now()
		_, err = bom.Verbalize(om, bom.Options{})
		if err != nil {
			return nil, err
		}
		verbalizeTime := time.Since(start)
		totalVerbalize += xomTime + verbalizeTime

		for _, cs := range d.Controls {
			// Median-ish timing over a few runs to steady the numbers.
			const reps = 20
			start := time.Now()
			for i := 0; i < reps; i++ {
				if _, err := rules.Compile(cs.Text, d.Vocab); err != nil {
					return nil, fmt.Errorf("%s/%s: %v", d.Name, cs.ID, err)
				}
			}
			per := time.Since(start) / reps
			lines := 0
			for _, l := range strings.Split(cs.Text, "\n") {
				if strings.TrimSpace(l) != "" {
					lines++
				}
			}
			words := len(strings.Fields(cs.Text))
			t.AddRow(d.Name, cs.ID, lines, words, per.String(), d.Vocab.Size())
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("XOM generation + auto-verbalization for all 3 domains: %s total", totalVerbalize),
		"every phrase in every control resolves through the BOM-to-XOM mapping; no application code is referenced",
	)
	return t, nil
}
