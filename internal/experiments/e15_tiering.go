package experiments

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/latency"
	"repro/internal/provenance"
	"repro/internal/workload"
)

// E15Tiering measures the tiered-storage layer (design decision D12)
// against the DisableTiering ablation across a 10x trace-count sweep:
// resident heap after demotion (the ROADMAP's million-trace retention
// claim needs it flat, not linear), cold-read latency through bloom
// probe + block page-in + materialization, and the counter-verified
// promise that a cold lookup touches exactly one segment per bloom hit.
func E15Tiering(sizes []int) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "Tiered storage: sealed segments vs all-resident ablation",
		Paper: "ROADMAP item 4: million-trace retention with bounded memory",
		Columns: []string{"mode", "traces", "rows", "heap MB", "resident", "sealed",
			"read p50", "read p99", "probes/cold read"},
	}
	d, err := workload.Hiring()
	if err != nil {
		return nil, err
	}
	// heapMB per mode+size, for the growth-ratio notes.
	heaps := make(map[string][]float64)
	for _, mode := range []string{"tiered", "all-resident"} {
		for _, n := range sizes {
			row, heapMB, err := e15Run(d, mode, n)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
			heaps[mode] = append(heaps[mode], heapMB)
		}
	}
	for _, mode := range []string{"tiered", "all-resident"} {
		h := heaps[mode]
		if len(h) >= 2 && h[0] > 0 {
			growth := float64(sizes[len(sizes)-1]) / float64(sizes[0])
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: heap grew %.1fx across a %.0fx trace sweep", mode, h[len(h)-1]/h[0], growth))
		}
	}
	t.Notes = append(t.Notes,
		"heap MB = post-GC HeapAlloc delta after ingest+correlate+compact, before any cold read",
		"read p50/p99 = one ViewTrace per trace after compaction; under tiering nearly every trace rehydrates from its sealed segment",
		"probes/cold read = segment probes / cold lookups; 1.0 means zone maps + bloom filters route every cold read to exactly one segment",
	)
	return t, nil
}

// e15Run loads one store configuration and returns its table row plus
// the heap delta in MB.
func e15Run(d *workload.Domain, mode string, n int) ([]string, float64, error) {
	dir, err := os.MkdirTemp("", "e15-*")
	if err != nil {
		return nil, 0, err
	}
	defer os.RemoveAll(dir)

	base := heapBytes()
	sys, err := core.New(d, core.Config{
		Dir:              dir,
		DisableTiering:   mode == "all-resident",
		SegmentColdAfter: 1,
	})
	if err != nil {
		return nil, 0, err
	}
	defer sys.Close()
	res := d.Simulate(workload.SimOptions{Seed: 15, Traces: n, ViolationRate: 0.2, Visibility: 1.0})
	if err := sys.Ingest(res.Events); err != nil {
		return nil, 0, err
	}
	if err := sys.CorrelateAll(); err != nil {
		return nil, 0, err
	}
	rows := sys.Store.Stats().Rows // total rows, counted before demotion
	// One compaction pass: with SegmentColdAfter=1 every trace untouched
	// since the last commit demotes; the ablation compacts but seals
	// nothing.
	if err := sys.Store.Compact(); err != nil {
		return nil, 0, err
	}
	heapMB := float64(int64(heapBytes())-int64(base)) / (1 << 20)
	if heapMB < 0 {
		heapMB = 0
	}
	ti0 := sys.Store.Tiering()

	// Read every trace once through the transparent read path and keep
	// the latency distribution. Under tiering all but the most recently
	// written traces are cold.
	dig := &latency.Digest{}
	for _, app := range sys.Store.AppIDs() {
		start := time.Now()
		err := sys.Store.ViewTrace(app, func(g *provenance.Graph, _ uint64) error {
			if len(g.Nodes(provenance.NodeFilter{AppID: app})) == 0 {
				return fmt.Errorf("trace %s read empty", app)
			}
			return nil
		})
		if err != nil {
			return nil, 0, err
		}
		dig.Add(time.Since(start))
	}
	ti1 := sys.Store.Tiering()

	probesPerCold := "n/a"
	if mode == "tiered" {
		lookups := ti1.ColdLookups - ti0.ColdLookups
		probes := ti1.SegmentProbes - ti0.SegmentProbes
		if lookups < uint64(n)/2 {
			return nil, 0, fmt.Errorf("E15: only %d of %d reads went cold; demotion did not happen", lookups, n)
		}
		// The one-probe promise, counter-verified: every probe either hit
		// or was a bloom false positive, and probes per lookup stays ~1.
		if ti1.SegmentProbes != ti1.ColdHits+ti1.FalseProbes {
			return nil, 0, fmt.Errorf("E15: probe accounting broken: %+v", ti1)
		}
		probesPerCold = fmt.Sprintf("%.3f", float64(probes)/float64(lookups))
	} else if ti1.Enabled || ti1.Segments != 0 {
		return nil, 0, fmt.Errorf("E15: ablation sealed segments: %+v", ti1)
	}

	st := sys.Store.Stats()
	row := []string{mode, fmt.Sprint(n), fmt.Sprint(rows),
		fmt.Sprintf("%.1f", heapMB), fmt.Sprint(st.ResidentTraces),
		fmt.Sprint(ti1.SealedTraces), dig.P50().String(), dig.P99().String(),
		probesPerCold}
	return row, heapMB, nil
}

// heapBytes reports live heap bytes after settling the collector.
func heapBytes() uint64 {
	runtime.GC()
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}
