package experiments

import (
	"fmt"
	"time"

	"repro/internal/bom"
	"repro/internal/controls"
	"repro/internal/core"
	"repro/internal/provbench"
	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/xom"
)

// E14Delta measures delta-driven control evaluation (design decision D11)
// against the -no-delta-eval ablation in two phases.
//
// Phase "grow-N": one trace is grown to N submission records and a
// scan-heavy control (a numeric predicate over every submission, nothing
// an equality prefilter or secondary index can cut short) is deployed.
// Then K unrelated notification commits land one at a time, each followed
// by a quiescence barrier. Full re-evaluation pays O(N) per commit; the
// delta path discriminates each commit against the control's footprint,
// proves the notification cannot affect it, and skips without touching
// the graph — per-commit cost stays flat as N grows.
//
// Phase "provbench": the open-loop hiring workload (which includes the
// windowed approval-timeliness control, so temporal predicates run end to
// end) drives a continuous system at a fixed offered load; the table
// reports detection lag and the checker's delta counters.
func E14Delta(sizes []int, commits int, pbDuration time.Duration, pbRate float64) (*Table, error) {
	tbl := &Table{
		ID:    "E14",
		Title: "delta-driven evaluation vs full re-evaluation",
		Paper: "§IV continuous compliance checking — re-check cost per commit as traces grow",
		Columns: []string{
			"mode", "phase", "per-commit us", "delta checks", "skips", "partials",
			"fallbacks", "skip%", "ctrl evaluated", "ctrl skipped", "windows resolved",
		},
	}

	perCommit := map[string]map[int]time.Duration{"delta": {}, "full-reeval": {}}
	for _, ablate := range []bool{false, true} {
		mode := "delta"
		if ablate {
			mode = "full-reeval"
		}
		for _, n := range sizes {
			cost, ds, err := e14Grow(ablate, n, commits)
			if err != nil {
				return nil, fmt.Errorf("e14 %s grow-%d: %w", mode, n, err)
			}
			perCommit[mode][n] = cost
			tbl.AddRow(mode, fmt.Sprintf("grow-%d", n),
				fmt.Sprintf("%.2f", float64(cost.Nanoseconds())/1000),
				ds.Checks, ds.Skips, ds.Partials, ds.Fallbacks,
				fmt.Sprintf("%.0f%%", 100*ds.SkipRatio()),
				ds.ControlsEvaluated, ds.ControlsSkipped, "-")
		}

		rep, cs, err := e14Provbench(ablate, pbDuration, pbRate)
		if err != nil {
			return nil, fmt.Errorf("e14 %s provbench: %w", mode, err)
		}
		detect := "-"
		for _, c := range rep.Classes {
			if c.Detect.Count > 0 {
				detect = fmt.Sprintf("%d", c.Detect.P99US)
			}
		}
		tbl.AddRow(mode, "provbench", detect,
			cs.DeltaChecks, cs.DeltaSkips, cs.DeltaPartials, cs.DeltaFallbacks,
			fmt.Sprintf("%.0f%%", 100*cs.DeltaSkipRatio),
			cs.ControlsEvaluated, cs.ControlsSkipped, cs.WindowsResolved)
	}

	small, large := sizes[0], sizes[len(sizes)-1]
	ratio := func(mode string) float64 {
		if perCommit[mode][small] <= 0 {
			return 0
		}
		return float64(perCommit[mode][large]) / float64(perCommit[mode][small])
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("per-commit cost %dx trace growth (%d -> %d records): delta %.1fx, full re-evaluation %.1fx",
			large/small, small, large, ratio("delta"), ratio("full-reeval")),
		"grow-N commits touch only notification records: the scan-heavy control's footprint proves them irrelevant, so the delta path answers from the cache without a version probe",
		"provbench rows exercise the windowed approval-timeliness control end to end; per-commit column holds detection-lag p99 us there",
	)
	return tbl, nil
}

// e14Model is the grow-phase schema: submissions a scan-heavy control
// binds, notifications whose commits the control provably ignores.
func e14Model() (*provenance.Model, *bom.Vocabulary, error) {
	m := provenance.NewModel("e14")
	if err := m.AddType(&provenance.TypeDef{Name: "submission", Class: provenance.ClassData}); err != nil {
		return nil, nil, err
	}
	if err := m.AddField("submission", &provenance.FieldDef{Name: "score", Kind: provenance.KindInt}); err != nil {
		return nil, nil, err
	}
	if err := m.AddType(&provenance.TypeDef{Name: "notification", Class: provenance.ClassData}); err != nil {
		return nil, nil, err
	}
	if err := m.AddField("notification", &provenance.FieldDef{Name: "channel", Kind: provenance.KindString}); err != nil {
		return nil, nil, err
	}
	om, err := xom.FromModel(m)
	if err != nil {
		return nil, nil, err
	}
	vocab, err := bom.Verbalize(om, bom.Options{
		MemberLabels: map[string]string{"submission.score": "score"},
	})
	if err != nil {
		return nil, nil, err
	}
	return m, vocab, nil
}

// e14ScanControl binds every submission through a numeric comparison: no
// equality prefilter hoists, no secondary index applies, so a full
// re-evaluation is O(trace).
const e14ScanControl = `
definitions
  set 'the sub' to a submission ;
if
  the score of 'the sub' is at least 0
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
`

// e14Grow runs one grow-phase cell and returns the measured per-commit
// check cost plus the registry's delta counters. Only the check is timed:
// each notification commit lands untimed, then the commit's write set is
// handed to CheckDelta exactly as the continuous checker's dirty-set
// machinery would, isolating evaluation cost from the store's own
// per-commit work.
func e14Grow(ablate bool, n, commits int) (time.Duration, controls.DeltaStats, error) {
	var zero controls.DeltaStats
	m, vocab, err := e14Model()
	if err != nil {
		return 0, zero, err
	}
	st, err := store.Open(store.Options{Model: m})
	if err != nil {
		return 0, zero, err
	}
	defer st.Close()
	reg, err := controls.NewRegistry(st, vocab, controls.Options{DisableDeltaEval: ablate})
	if err != nil {
		return 0, zero, err
	}
	if _, err := reg.Deploy("scan", "scan-heavy submission control", e14ScanControl); err != nil {
		return 0, zero, err
	}

	const app = "T1"
	batch := make([]*provenance.Node, 0, n)
	for i := 0; i < n; i++ {
		batch = append(batch, &provenance.Node{
			ID: fmt.Sprintf("sub-%06d", i), Class: provenance.ClassData,
			Type: "submission", AppID: app,
			Attrs: map[string]provenance.Value{"score": provenance.Int(int64(i % 100))},
		})
	}
	for _, err := range st.PutNodes(batch) {
		if err != nil {
			return 0, zero, err
		}
	}
	if _, err := reg.Check(app); err != nil { // warm the result cache at the grown version
		return 0, zero, err
	}

	sub := st.Subscribe()
	defer sub.Cancel()
	var checkTime time.Duration
	for i := 0; i < commits; i++ {
		ntf := &provenance.Node{
			ID: fmt.Sprintf("ntf-%04d", i), Class: provenance.ClassData,
			Type: "notification", AppID: app,
			Attrs: map[string]provenance.Value{"channel": provenance.String("email")},
		}
		if err := st.PutNode(ntf); err != nil {
			return 0, zero, err
		}
		ws := store.NewWriteSet()
		ws.AddEvent(<-sub.C())
		start := time.Now()
		if _, _, err := reg.CheckDelta(app, ws); err != nil {
			return 0, zero, err
		}
		checkTime += time.Since(start)
	}
	return checkTime / time.Duration(commits), reg.DeltaStats(), nil
}

// e14Provbench drives the hiring domain (with its windowed
// approval-timeliness control) through the open-loop harness on one mode.
func e14Provbench(ablate bool, duration time.Duration, rate float64) (*provbench.Report, controls.CheckerStats, error) {
	var zero controls.CheckerStats
	d, err := provbench.DomainFor("hiring")
	if err != nil {
		return nil, zero, err
	}
	sys, err := core.New(d, core.Config{Continuous: true, DisableDeltaEval: ablate})
	if err != nil {
		return nil, zero, err
	}
	defer sys.Close()

	spec := provbench.Spec{
		Name:     fmt.Sprintf("e14-%t-%.0f", ablate, rate),
		Seed:     14,
		Duration: provbench.Dur(duration),
		Classes: []provbench.ClientClass{{
			Name: "steady", Domain: "hiring", Clients: 4,
			RatePerSec: rate,
			Arrival:    provbench.ArrivalSpec{Process: "poisson"},
			BatchMin:   4, BatchMax: 8, ViolationRate: 0.3,
		}},
	}
	sched, err := provbench.Generate(spec)
	if err != nil {
		return nil, zero, err
	}
	rep, err := provbench.Run(sched, &provbench.SystemTarget{Sys: sys}, provbench.Options{
		DetectEvery: 8,
		AckPoll:     time.Millisecond,
	})
	if err != nil {
		return nil, zero, err
	}
	return rep, sys.Checker.Stats(), nil
}
