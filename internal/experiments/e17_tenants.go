package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/provbench"
	"repro/internal/tenant"
)

// E17Tenants measures multi-tenant checker isolation: a quiet tenant
// offering a trickle of traffic shares one continuous-checking worker
// with a noisy tenant offering an order of magnitude more. Three cells:
//
//	solo           the quiet tenant alone — the baseline its p99
//	               detection lag is judged against
//	fair-share     quiet + noisy under weighted fair-share scheduling
//	               (the default): each worker drains per-tenant queues by
//	               stride, so the quiet tenant's lag tracks its own queue
//	no-fair-share  the D14 ablation (provd -no-fair-share): one FIFO per
//	               worker, so the quiet tenant's checks sit behind the
//	               noisy backlog and its lag inflates with the
//	               neighbour's load
//
// Detection lag is sampled per tenant (offer -> the op's own tenant's
// traces checked), which is what makes the isolation claim observable:
// under fair share the quiet tenant's p99 stays within small multiples
// of solo; under the ablation it degrades with the noisy backlog.
func E17Tenants(duration time.Duration, quietRate, noisyRate float64) (*Table, error) {
	tbl := &Table{
		ID:    "E17",
		Title: "multi-tenant fair-share checking vs single-FIFO ablation",
		Paper: "section VI governance — control points per organizational scope, evaluated in isolation",
		Columns: []string{
			"mode", "class", "offered/s", "admitted", "shed",
			"detect p50 us", "detect p99 us", "checker checks (quiet/noisy)",
		},
	}
	type cell struct {
		mode      string
		withNoisy bool
		disable   bool
	}
	cells := []cell{
		{"solo", false, false},
		{"fair-share", true, false},
		{"no-fair-share", true, true},
	}
	var soloP99, fairP99, ablationP99 int64
	for _, c := range cells {
		rep, checks, err := e17Run(c.withNoisy, c.disable, duration, quietRate, noisyRate)
		if err != nil {
			return nil, fmt.Errorf("e17 %s: %w", c.mode, err)
		}
		for _, cr := range rep.Classes {
			detail := fmt.Sprintf("%d/%d", checks["quiet"], checks["noisy"])
			tbl.AddRow(c.mode, cr.Class, fmt.Sprintf("%.0f", cr.OfferedPerSec),
				cr.Admitted, cr.Shed, cr.Detect.P50US, cr.Detect.P99US, detail)
			if cr.Class == "quiet" {
				switch c.mode {
				case "solo":
					soloP99 = cr.Detect.P99US
				case "fair-share":
					fairP99 = cr.Detect.P99US
				case "no-fair-share":
					ablationP99 = cr.Detect.P99US
				}
			}
		}
	}
	if soloP99 > 0 {
		tbl.Notes = append(tbl.Notes, fmt.Sprintf(
			"quiet-tenant detect p99: solo %dus, fair-share %dus (%.1fx solo), no-fair-share %dus (%.1fx solo)",
			soloP99, fairP99, float64(fairP99)/float64(soloP99),
			ablationP99, float64(ablationP99)/float64(soloP99)))
	}
	tbl.Notes = append(tbl.Notes,
		"detect lag is per-tenant: offer -> the op's own tenant's traces checked (Checker.WaitTenant), so a neighbour's backlog cannot hide in the barrier",
		"one checker worker, same seed and schedule in both shared cells; the only difference is the queueing discipline (CheckerOptions.DisableFairShare)",
		"every cell runs the same 2ms per-re-check device model (CheckEvalDelay) so checking is the contended resource; rates keep the shared ingest path unsaturated, isolating the scheduling effect",
	)
	return tbl, nil
}

// e17Run executes one cell: the quiet class, optionally the noisy class,
// on a fresh in-memory continuous system with one checker worker.
func e17Run(withNoisy, disableFairShare bool, duration time.Duration, quietRate, noisyRate float64) (*provbench.Report, map[string]uint64, error) {
	d, err := provbench.DomainFor("hiring")
	if err != nil {
		return nil, nil, err
	}
	sys, err := core.New(d, core.Config{
		Continuous:       true,
		Workers:          1, // a single worker makes queueing discipline the whole story
		DisableFairShare: disableFairShare,
		// The device model (identical in every cell): a flat 2ms
		// per-re-check evaluation cost stands in for an expensive control
		// portfolio, the role slowfs plays for storage in E16. Without it
		// this hardware checks a trace in microseconds, the worker never
		// accumulates a queue, and no scheduling discipline could matter
		// — the contended resource must exist before fairness over it is
		// measurable.
		CheckEvalDelay: 2 * time.Millisecond,
	})
	if err != nil {
		return nil, nil, err
	}
	defer sys.Close()
	// The quiet tenant is weighted 4:1 — the operator's SLO-class knob.
	// With equal weights two tenants each own half the worker, so the
	// fair-share bound is 2x solo by construction; the weight buys the
	// latency-sensitive tenant most of the worker back while the noisy
	// tenant still drains (the ablation ignores weights entirely, which
	// is the point).
	for id, w := range map[string]int{"quiet": 4, "noisy": 1} {
		if err := sys.Tenants.Create(tenant.Tenant{ID: id, Weight: w}); err != nil {
			return nil, nil, err
		}
	}

	classes := []provbench.ClientClass{{
		Name: "quiet", Tenant: "quiet", Domain: "hiring", Clients: 1,
		RatePerSec: quietRate,
		Arrival:    provbench.ArrivalSpec{Process: "uniform"},
		BatchMin:   4, BatchMax: 8, ViolationRate: 0.2,
	}}
	if withNoisy {
		classes = append(classes, provbench.ClientClass{
			Name: "noisy", Tenant: "noisy", Domain: "hiring", Clients: 4,
			RatePerSec: noisyRate, Skew: 1,
			Arrival:  provbench.ArrivalSpec{Process: "gamma", Shape: 0.5},
			BatchMin: 16, BatchMax: 32, ViolationRate: 0.2,
		})
	}
	// One spec name for every cell: the schedule is a pure function of
	// (name, seed, classes), so both shared cells replay the identical
	// op sequence and only the queueing discipline differs.
	spec := provbench.Spec{
		Name:     "e17",
		Seed:     17,
		Duration: provbench.Dur(duration),
		Classes:  classes,
	}
	sched, err := provbench.Generate(spec)
	if err != nil {
		return nil, nil, err
	}
	rep, err := provbench.Run(sched, &provbench.SystemTarget{Sys: sys}, provbench.Options{
		DetectEvery: 1,
		AckPoll:     time.Millisecond,
	})
	if err != nil {
		return nil, nil, err
	}
	return rep, sys.Checker.Stats().TenantChecks, nil
}
