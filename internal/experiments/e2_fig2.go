package experiments

import (
	"fmt"
	"sort"

	"repro/internal/controls"
	"repro/internal/core"
	"repro/internal/provenance"
	"repro/internal/workload"
)

// E2Fig2 reproduces Fig 1 and Fig 2 of the paper: one fully managed run of
// the "new position open" process is captured, correlated into a
// provenance graph, and the gm-approval internal control is materialized
// as a custom node connected to the data nodes it verifies. The table is
// the census of the resulting trace subgraph.
func E2Fig2() (*Table, error) {
	d, err := workload.Hiring()
	if err != nil {
		return nil, err
	}
	sys, err := core.New(d, core.Config{Materialize: true})
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	// One deterministic, compliant, new-position trace: seed chosen so the
	// first trace takes the approval path (Fig 1's full flow).
	var res *workload.SimResult
	for seed := int64(1); ; seed++ {
		res = d.Simulate(workload.SimOptions{Seed: seed, Traces: 1, ViolationRate: 0, Visibility: 1.0})
		hasApproval := false
		for _, ev := range res.Events {
			if ev.Type == "approval.recorded" && ev.Payload["approved"] == "true" {
				hasApproval = true
			}
		}
		if hasApproval {
			break
		}
	}
	if err := sys.Ingest(res.Events); err != nil {
		return nil, err
	}
	if err := sys.CorrelateAll(); err != nil {
		return nil, err
	}
	if _, err := sys.CheckAll(); err != nil {
		return nil, err
	}

	app := sys.Store.AppIDs()[0]
	t := &Table{
		ID:      "E2",
		Title:   "Census of the new-position-open trace graph with materialized controls",
		Paper:   "Fig 1 (process) + Fig 2 (trace with control point custom node)",
		Columns: []string{"entity", "count"},
	}
	var census provenance.Census
	var controlEdges int
	var controlLinked bool
	err = sys.Store.View(func(g *provenance.Graph) error {
		tr := g.Trace(app)
		census = tr.TakeCensus()
		// The Fig 2 shape: the gm-approval control node links to the
		// requisition and (transitively bound) evidence nodes.
		cp := g.Node("cp-gm-approval-" + app)
		if cp == nil {
			return fmt.Errorf("control point node missing")
		}
		for _, e := range g.Edges(cp.ID, provenance.Out, controls.ChecksRelation) {
			controlEdges++
			if g.Node(e.Target).Type == "jobRequisition" {
				controlLinked = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !controlLinked {
		return nil, fmt.Errorf("control point not linked to the job requisition")
	}
	classes := []provenance.Class{
		provenance.ClassData, provenance.ClassTask, provenance.ClassResource, provenance.ClassCustom,
	}
	for _, c := range classes {
		t.AddRow(c.String()+" nodes", census.ByClass[c])
	}
	var types []string
	for typ := range census.ByType {
		types = append(types, typ)
	}
	sort.Strings(types)
	for _, typ := range types {
		t.AddRow("  type "+typ, census.ByType[typ])
	}
	var edgeTypes []string
	for et := range census.EdgeTypes {
		edgeTypes = append(edgeTypes, et)
	}
	sort.Strings(edgeTypes)
	for _, et := range edgeTypes {
		t.AddRow("edge "+et, census.EdgeTypes[et])
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("control points materialized as custom nodes: %d (one per deployed control)",
			census.ByType[controls.ControlTypeName]),
		fmt.Sprintf("gm-approval control node carries %d checks edges incl. the job requisition (Fig 2 shape)",
			controlEdges),
	)
	return t, nil
}
