package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/controls"
	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/workload"
)

// E8ChangeCost measures the paper's central operational claim: business
// people can create and change internal controls "without requiring the
// application code to be modified every time". On a live system already
// holding data, the experiment deploys a brand-new control, tightens an
// existing one, and rolls it back — measuring each change as (artifact
// touched, deploy latency, traces re-checkable immediately). The baseline
// column states what the same change costs in the hand-coded harness:
// a Go source edit, recompile, redeploy, process restart.
func E8ChangeCost() (*Table, error) {
	d, err := workload.Hiring()
	if err != nil {
		return nil, err
	}
	sys, err := core.New(d, core.Config{})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	res := d.Simulate(workload.SimOptions{Seed: 31, Traces: 500, ViolationRate: 0.3, Visibility: 1.0})
	if err := sys.Ingest(res.Events); err != nil {
		return nil, err
	}
	if err := sys.CorrelateAll(); err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "E8",
		Title:   "Cost of changing internal controls: rules vs application code",
		Paper:   "§I: business people test controls without application code changes",
		Columns: []string{"change", "rules artifact", "deploy", "effective on", "baseline cost"},
	}

	// Change 1: add a brand-new control (minimum candidate count) on a
	// system already full of traces.
	newControl := `
definitions
  set 'the request' to a job requisition ;
if
  the candidate list of 'the request' does not exist
  or the candidate count of the candidate list of 'the request' is at least 2
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
  add alert "fewer than two candidates were sourced" ;
`
	start := time.Now()
	if _, err := sys.Registry.Deploy("min-candidates", "At least two candidates", newControl); err != nil {
		return nil, err
	}
	deployNew := time.Since(start)
	outcomes, err := sys.Registry.CheckAll()
	if err != nil {
		return nil, err
	}
	checked := len(sys.Store.AppIDs())
	t.AddRow("add new control",
		fmt.Sprintf("%d lines of rule text", textLines(newControl)),
		deployNew.String(),
		fmt.Sprintf("%d existing traces", checked),
		"edit Go source, recompile, redeploy, restart")

	// Change 2: tighten the same control's threshold (redeploy in place).
	tightened := strings.Replace(newControl, "at least 2", "at least 3", 1)
	before := violationsFor(outcomes, "min-candidates")
	start = time.Now()
	cp, err := sys.Registry.Deploy("min-candidates", "", tightened)
	if err != nil {
		return nil, err
	}
	deployTighten := time.Since(start)
	outcomes, err = sys.Registry.CheckAll()
	if err != nil {
		return nil, err
	}
	after := violationsFor(outcomes, "min-candidates")
	t.AddRow("tighten threshold",
		"1 edited line, version "+fmt.Sprint(cp.Version),
		deployTighten.String(),
		fmt.Sprintf("violations %d -> %d", before, after),
		"edit Go source, recompile, redeploy, restart")
	if after < before {
		return nil, fmt.Errorf("tightening reduced violations (%d -> %d)?", before, after)
	}

	// Change 3: retire the control.
	start = time.Now()
	if err := sys.Registry.Remove("min-candidates"); err != nil {
		return nil, err
	}
	t.AddRow("remove control", "registry delete", time.Since(start).String(),
		"immediately", "edit Go source, recompile, redeploy, restart")

	t.Notes = append(t.Notes,
		"every change is a rule-text operation against the live registry; the ingest pipeline, store and application code are untouched",
		fmt.Sprintf("system under change held %d traces and %d records throughout", checked, sys.Store.Stats().Rows),
	)
	return t, nil
}

func textLines(s string) int {
	n := 0
	for _, l := range strings.Split(s, "\n") {
		if strings.TrimSpace(l) != "" {
			n++
		}
	}
	return n
}

func violationsFor(outcomes []*controls.Outcome, controlID string) int {
	n := 0
	for _, o := range outcomes {
		if o.ControlID == controlID && o.Result.Verdict == rules.Violated {
			n++
		}
	}
	return n
}
