package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/workload"
)

// metrics accumulates binary detection quality over (trace, control)
// decisions.
type metrics struct {
	tp, fp, fn int
	indef      int // rules-only: Indeterminate or NotApplicable decisions
	total      int
}

func (m *metrics) observe(positive, fired bool) {
	m.total++
	switch {
	case positive && fired:
		m.tp++
	case !positive && fired:
		m.fp++
	case positive && !fired:
		m.fn++
	}
}

func (m *metrics) precision() float64 {
	if m.tp+m.fp == 0 {
		return 1
	}
	return float64(m.tp) / float64(m.tp+m.fp)
}

func (m *metrics) recall() float64 {
	if m.tp+m.fn == 0 {
		return 1
	}
	return float64(m.tp) / float64(m.tp+m.fn)
}

func (m *metrics) f1() float64 {
	p, r := m.precision(), m.recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// E3Visibility sweeps the capture probability of unmanaged events and
// compares three detectors on all three domains:
//
//   - the rule engine over the provenance graph (three-valued verdicts),
//   - the integrated hand-coded baseline (two-valued, sees all sources),
//   - the in-application hand-coded baseline (two-valued, sees only its
//     own application's sources).
//
// This measures the paper's Section I claim that compliance detection in
// partially managed processes needs cross-system provenance capture, and
// design decision D1 (three-valued verdicts surface missing evidence as
// Indeterminate instead of definite false verdicts).
func E3Visibility(tracesPerDomain int, visibilities []float64) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "Detection quality vs visibility of unmanaged events",
		Paper: "§I: detecting compliance failures where processes are partially managed",
		Columns: []string{"visibility",
			"rules P", "rules R", "rules F1", "rules indef%",
			"integ P", "integ R", "integ F1",
			"inapp P", "inapp R", "inapp F1"},
	}
	builders := []func() (*workload.Domain, error){
		workload.Hiring, workload.Procurement, workload.Claims,
	}
	for _, vis := range visibilities {
		var mRules, mInteg, mInApp metrics
		for di, build := range builders {
			d, err := build()
			if err != nil {
				return nil, err
			}
			res := d.Simulate(workload.SimOptions{
				Seed: int64(1000 + di), Traces: tracesPerDomain,
				ViolationRate: 0.3, Visibility: vis,
			})

			// Rule engine over the provenance graph.
			sys, err := core.New(d, core.Config{})
			if err != nil {
				return nil, err
			}
			if err := sys.Ingest(res.Events); err != nil {
				sys.Close()
				return nil, err
			}
			if err := sys.CorrelateAll(); err != nil {
				sys.Close()
				return nil, err
			}
			outcomes, err := sys.CheckAll()
			if err != nil {
				sys.Close()
				return nil, err
			}
			for _, o := range outcomes {
				truth := res.Truth[o.Result.AppID]
				positive := truth.Violation && truth.ControlID == o.ControlID
				switch o.Result.Verdict {
				case rules.Violated:
					mRules.observe(positive, true)
				case rules.Satisfied:
					mRules.observe(positive, false)
				default:
					mRules.indef++
					mRules.total++
				}
			}
			sys.Close()

			// Hand-coded baselines over the same event stream.
			integ, _ := baseline.ForDomain(d.Name, baseline.ScopeIntegrated())
			scope, _ := baseline.InAppScope(d.Name)
			inapp, _ := baseline.ForDomain(d.Name, scope)
			for _, ev := range res.Events {
				integ.Observe(ev)
				inapp.Observe(ev)
			}
			for app, truth := range res.Truth {
				for control, v := range integ.Verdicts(app) {
					positive := truth.Violation && truth.ControlID == control
					mInteg.observe(positive, v == baseline.Violated)
				}
				for control, v := range inapp.Verdicts(app) {
					positive := truth.Violation && truth.ControlID == control
					mInApp.observe(positive, v == baseline.Violated)
				}
			}
		}
		t.AddRow(fmt.Sprintf("%.1f", vis),
			mRules.precision(), mRules.recall(), mRules.f1(),
			fmt.Sprintf("%.1f", 100*float64(mRules.indef)/float64(mRules.total)),
			mInteg.precision(), mInteg.recall(), mInteg.f1(),
			mInApp.precision(), mInApp.recall(), mInApp.f1(),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d traces per domain x 3 domains, 30%% seeded violations; decisions are (trace, control) pairs", tracesPerDomain),
		"rules indef% = share of decisions the rule engine declares Indeterminate/NotApplicable instead of guessing",
		"expected shape: at visibility 1.0 rules == integrated baseline == perfect; in-app baseline degenerates at every visibility; rules degrade gracefully as visibility drops",
	)
	return t, nil
}
