package experiments

import (
	"fmt"
	"time"

	"repro/internal/controls"
	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/workload"
)

// E6Continuous compares batch and continuous compliance checking (the
// paper's future-work item "continuous compliance checking", design
// decision D3): the same event stream is either ingested and checked once
// at the end, or correlated and re-checked incrementally from the store's
// change feed. The table reports sustained throughput and the verdict
// agreement between the two modes.
func E6Continuous(traces int) (*Table, error) {
	d, err := workload.Hiring()
	if err != nil {
		return nil, err
	}
	res := d.Simulate(workload.SimOptions{Seed: 13, Traces: traces, ViolationRate: 0.3, Visibility: 1.0})

	t := &Table{
		ID:      "E6",
		Title:   "Continuous vs batch compliance checking",
		Paper:   "§IV future work: continuous compliance checking",
		Columns: []string{"mode", "wall time", "events/s", "re-checks", "violations found"},
	}

	// Batch: ingest everything, correlate once, sweep once.
	batch, err := core.New(d, core.Config{})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := batch.Ingest(res.Events); err != nil {
		batch.Close()
		return nil, err
	}
	if err := batch.CorrelateAll(); err != nil {
		batch.Close()
		return nil, err
	}
	batchOutcomes, err := batch.CheckAll()
	if err != nil {
		batch.Close()
		return nil, err
	}
	batchTime := time.Since(start)
	batchViolations := countViolations(batchOutcomes)
	batchVerdicts := verdictMap(batchOutcomes)
	batch.Close()
	t.AddRow("batch", batchTime.String(),
		fmt.Sprintf("%.0f", float64(len(res.Events))/batchTime.Seconds()),
		1, batchViolations)

	// Continuous: incremental correlation + re-check per record.
	cont, err := core.New(d, core.Config{Continuous: true})
	if err != nil {
		return nil, err
	}
	start = time.Now()
	if err := cont.Ingest(res.Events); err != nil {
		cont.Close()
		return nil, err
	}
	// Drain: first wait until the dashboard has seen every trace for every
	// control, then wait for quiescence — the store sequence and re-check
	// counter must stop moving, so no correlation or check work is still
	// in flight when the final sweep runs.
	deadline := time.Now().Add(10 * time.Minute)
	for {
		done := true
		kpis := cont.Board.Snapshot()
		if len(kpis) < len(d.Controls) {
			done = false
		}
		for _, k := range kpis {
			if k.Total < traces {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			cont.Close()
			return nil, fmt.Errorf("continuous mode never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for {
		seq1, chk1 := cont.Store.Stats().Seq, cont.Checker.Checked()
		time.Sleep(25 * time.Millisecond)
		seq2, chk2 := cont.Store.Stats().Seq, cont.Checker.Checked()
		if seq1 == seq2 && chk1 == chk2 {
			break
		}
		if time.Now().After(deadline) {
			cont.Close()
			return nil, fmt.Errorf("continuous mode never quiesced")
		}
	}
	contTime := time.Since(start)
	rechecks := cont.Checker.Checked()
	contOutcomes, err := cont.Registry.CheckAll()
	if err != nil {
		cont.Close()
		return nil, err
	}
	contViolations := countViolations(contOutcomes)
	contVerdicts := verdictMap(contOutcomes)
	cont.Close()
	t.AddRow("continuous", contTime.String(),
		fmt.Sprintf("%.0f", float64(len(res.Events))/contTime.Seconds()),
		rechecks, contViolations)

	// Agreement check: both modes must reach identical final verdicts.
	disagree := 0
	for k, v := range batchVerdicts {
		if contVerdicts[k] != v {
			disagree++
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d traces, %d events; final verdicts disagree on %d of %d decisions",
			traces, len(res.Events), disagree, len(batchVerdicts)),
		"continuous mode re-correlates and re-checks the affected trace on every record; work per event is O(trace), not O(store)",
	)
	if disagree != 0 {
		return nil, fmt.Errorf("continuous and batch verdicts disagree on %d decisions", disagree)
	}
	return t, nil
}

func countViolations(outcomes []*controls.Outcome) int {
	n := 0
	for _, o := range outcomes {
		if o.Result.Verdict == rules.Violated {
			n++
		}
	}
	return n
}

// verdictMap flattens outcomes to (trace|control) -> verdict for the
// agreement check.
func verdictMap(outcomes []*controls.Outcome) map[string]rules.Verdict {
	m := make(map[string]rules.Verdict, len(outcomes))
	for _, o := range outcomes {
		m[o.Result.AppID+"|"+o.ControlID] = o.Result.Verdict
	}
	return m
}
