package experiments

import (
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/latency"
	"repro/internal/provbench"
	"repro/internal/store/slowfs"
)

// e16Device is the modeled durable device every shard's log runs on
// (via slowfs): 2ms per sync plus 512 KiB/s drain bandwidth — the
// profile of cheap network-attached block storage. CI hosts make real
// fsync nearly free, which would hide the per-node durability
// bottleneck that sharding actually multiplies; the device model
// restores it identically for every configuration.
var e16Device = slowfs.Device{Latency: 2 * time.Millisecond, BytesPerSec: 512 << 10}

// E16Cluster measures horizontal scale-out: the same open-loop provbench
// workload is driven against a consistent-hash router fronting 1, 2 and
// 4 in-process provd shards, each with its own durable store (Sync on,
// so every shard is a separate fsync lane). Two phases:
//
//   - overhead: a light load on one shard, reached directly vs through
//     the router, isolates the router's admission cost (the fan-out,
//     composite-ack and proxy machinery) from any queueing effect.
//   - scale: a load chosen to saturate a single shard. Open loop means
//     the offered rate never back-pressures, so a saturated node sheds
//     and drains slowly; events/s (admitted events over elapsed time,
//     drain included) is the node's real apply throughput. Adding
//     shards multiplies admission queues and fsync lanes, so events/s
//     should grow with the shard count.
func E16Cluster(duration time.Duration, overheadRate, scaleRate float64, shardCounts []int) (*Table, error) {
	tbl := &Table{
		ID:    "E16",
		Title: "sharded cluster scale-out: throughput and router overhead",
		Paper: "section V scalability — partitioning the trace space across collection points",
		Columns: []string{
			"phase", "config", "offered/s", "admitted", "shed",
			"events/s", "admit p50/p99 us", "ack p99 us",
		},
	}
	type cell struct {
		rep *provbench.Report
	}
	addRow := func(phase, config string, rep *provbench.Report) {
		admit, ack := foldE16(rep)
		tbl.AddRow(phase, config,
			fmt.Sprintf("%.0f", rep.OfferedPerSec), rep.Admitted, rep.Shed,
			fmt.Sprintf("%.0f", rep.EventsPerSec),
			fmt.Sprintf("%d/%d", admit.P50US, admit.P99US),
			fmt.Sprintf("%d", ack.P99US))
	}

	// Phase 1: router overhead at a light, non-queueing load.
	var direct, routed cell
	for _, via := range []bool{false, true} {
		rep, err := e16Run(1, via, duration, overheadRate)
		if err != nil {
			return nil, fmt.Errorf("e16 overhead via=%t: %w", via, err)
		}
		config := "direct-1shard"
		if via {
			config, routed = "router-1shard", cell{rep}
		} else {
			direct = cell{rep}
		}
		addRow("overhead", config, rep)
	}

	// Phase 2: scale-out under a single-shard-saturating load.
	scale := map[int]cell{}
	for _, n := range shardCounts {
		rep, err := e16Run(n, true, duration, scaleRate)
		if err != nil {
			return nil, fmt.Errorf("e16 scale %d shards: %w", n, err)
		}
		scale[n] = cell{rep}
		addRow("scale", fmt.Sprintf("router-%dshard", n), rep)
	}

	dAdmit, _ := foldE16(direct.rep)
	rAdmit, _ := foldE16(routed.rep)
	overheadUS := rAdmit.P99US - dAdmit.P99US
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("router admission overhead p99 = %dus (router-1shard %dus - direct-1shard %dus); acceptance < 2000us",
			overheadUS, rAdmit.P99US, dAdmit.P99US),
	)
	if base, ok := scale[1]; ok {
		for _, n := range shardCounts {
			if n == 1 {
				continue
			}
			c, ok := scale[n]
			if !ok || base.rep.EventsPerSec <= 0 {
				continue
			}
			tbl.Notes = append(tbl.Notes, fmt.Sprintf(
				"%d shards: %.2fx the 1-shard events/s (%.0f vs %.0f)",
				n, c.rep.EventsPerSec/base.rep.EventsPerSec,
				c.rep.EventsPerSec, base.rep.EventsPerSec))
		}
	}
	tbl.Notes = append(tbl.Notes,
		"events/s includes drain: a saturated shard keeps applying its backlog after the schedule ends, so the column is apply throughput, not offered rate",
		fmt.Sprintf("every shard commits through a modeled durable device (slowfs: %v latency + %d KiB/s drain); sharding multiplies commit lanes the way it would multiply real disks",
			e16Device.Latency, e16Device.BytesPerSec>>10),
	)
	return tbl, nil
}

// foldE16 pulls the single workload class's admit and ack summaries out
// of a report.
func foldE16(rep *provbench.Report) (admit, ack latency.Summary) {
	for _, c := range rep.Classes {
		return c.Admit, c.Ack
	}
	return
}

// e16Run drives one provbench run against n shards, optionally fronted
// by the router. viaRouter=false requires n==1 (the direct baseline).
func e16Run(n int, viaRouter bool, duration time.Duration, rate float64) (*provbench.Report, error) {
	if !viaRouter && n != 1 {
		return nil, fmt.Errorf("e16: direct baseline is single-shard only")
	}
	type node struct {
		sys *core.System
		srv *httptest.Server
	}
	nodes := make([]node, 0, n)
	shards := make([]cluster.Shard, 0, n)
	defer func() {
		for _, nd := range nodes {
			nd.srv.Close()
			nd.sys.Close()
		}
	}()
	dirs := make([]string, 0, n)
	defer func() {
		for _, d := range dirs {
			os.RemoveAll(d)
		}
	}()
	for i := 0; i < n; i++ {
		dir, err := os.MkdirTemp("", "e16-*")
		if err != nil {
			return nil, err
		}
		dirs = append(dirs, dir)
		d, err := provbench.DomainFor("hiring")
		if err != nil {
			return nil, err
		}
		sys, err := core.New(d, core.Config{
			// Sync on + the slowfs device: the commit fsync lane is the
			// per-node bottleneck this experiment shards. Continuous off:
			// on-commit correlation is pure CPU and E16 measures ingest,
			// not detection lag.
			Dir: dir, Sync: true,
			FS:               slowfs.New(nil, e16Device),
			IngestQueueDepth: 256,
		})
		if err != nil {
			return nil, err
		}
		srv := httptest.NewServer(httpapi.NewServer(sys, false))
		nodes = append(nodes, node{sys, srv})
		shards = append(shards, cluster.Shard{
			Name: fmt.Sprintf("s%d", i+1), URL: srv.URL,
		})
	}

	base := nodes[0].srv.URL
	if viaRouter {
		rt, err := cluster.NewRouter(shards, 0)
		if err != nil {
			return nil, err
		}
		rsrv := httptest.NewServer(rt)
		defer rsrv.Close()
		base = rsrv.URL
	}

	spec := provbench.Spec{
		Name:     fmt.Sprintf("e16-%dx-%t-%.0f", n, viaRouter, rate),
		Seed:     16,
		Duration: provbench.Dur(duration),
		Classes: []provbench.ClientClass{
			{
				Name: "ingest", Domain: "hiring", Clients: 8,
				RatePerSec: rate, Skew: 1,
				Arrival:  provbench.ArrivalSpec{Process: "poisson"},
				BatchMin: 4, BatchMax: 8, ViolationRate: 0.2,
			},
		},
	}
	sched, err := provbench.Generate(spec)
	if err != nil {
		return nil, err
	}
	return provbench.Run(sched, &provbench.HTTPTarget{Base: base}, provbench.Options{
		AckPoll: time.Millisecond,
	})
}
