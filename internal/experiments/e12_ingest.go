package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/ingest"
	"repro/internal/latency"
	"repro/internal/workload"
)

// E12Ingest measures the asynchronous ingestion gateway (design decision
// D9) against the synchronous baseline (the -sync-ingest ablation): W
// concurrent writers ship the same simulated event stream in fixed-size
// batches into a durable, fsynced store. In sync mode every write call is
// the full group-committed ingestion — admission latency IS commit
// latency. In async mode writers offer batches to the bounded gateway
// under idempotency keys, back off on 429 (counted as "shed"), and the
// clock stops only once the gateway has drained every admitted event to
// the store, so the throughput column compares durable events per second
// in both modes. Continuous correlation/checking runs in both modes so
// the downstream work per event is identical.
func E12Ingest(traces int, writerCounts []int) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "Async ingestion gateway vs synchronous ingest",
		Paper: "§II recorder clients feeding the provenance store; DESIGN.md D9",
		Columns: []string{"writers", "mode", "events", "events/s",
			"p99 admit", "shed"},
	}
	d, err := workload.Hiring()
	if err != nil {
		return nil, err
	}
	res := d.Simulate(workload.SimOptions{Seed: 12, Traces: traces, ViolationRate: 0.3, Visibility: 1.0})
	batches := res.EventBatches(64)
	for _, writers := range writerCounts {
		for _, mode := range []string{"sync", "async"} {
			m, err := e12Measure(d, batches, writers, mode == "async")
			if err != nil {
				return nil, err
			}
			t.AddRow(writers, mode, m.events, fmt.Sprintf("%.0f", m.throughput),
				m.p99.String(), m.shed)
		}
	}
	t.Notes = append(t.Notes,
		"sync: POST /events?sync=1 semantics — the admission call is the full durable commit",
		"async: bounded gateway admission; shed counts 429 rejections the writer retried after Retry-After",
		"async events/s includes draining every admitted batch to the store before the clock stops",
	)
	return t, nil
}

type e12Measurement struct {
	events     int
	throughput float64
	p99        time.Duration
	shed       uint64
}

func e12Measure(d *workload.Domain, batches [][]events.AppEvent, writers int, async bool) (e12Measurement, error) {
	dir, err := os.MkdirTemp("", "e12-*")
	if err != nil {
		return e12Measurement{}, err
	}
	defer os.RemoveAll(dir)
	sys, err := core.New(d, core.Config{
		Dir: dir, Sync: true, Continuous: true,
		DisableAsyncIngest: !async,
		IngestQueueDepth:   512,
	})
	if err != nil {
		return e12Measurement{}, err
	}
	defer sys.Close()

	var total int
	for _, b := range batches {
		total += len(b)
	}
	var shed atomic.Uint64
	var firstErr atomic.Value
	lat := make([][]time.Duration, writers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			samples := make([]time.Duration, 0, len(batches)/writers+1)
			for i := w; i < len(batches); i += writers {
				batch := batches[i]
				if !async {
					t0 := time.Now()
					if err := sys.Ingest(batch); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					samples = append(samples, time.Since(t0))
					continue
				}
				key := fmt.Sprintf("e12-%d-%d", w, i)
				for {
					t0 := time.Now()
					_, err := sys.Gateway.Offer(key, batch)
					var ov *ingest.OverloadError
					if errors.As(err, &ov) {
						shed.Add(1)
						time.Sleep(ov.RetryAfter)
						continue
					}
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					samples = append(samples, time.Since(t0))
					break
				}
			}
			lat[w] = samples
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return e12Measurement{}, err
	}
	if async {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if err := sys.Gateway.WaitIdle(ctx); err != nil {
			return e12Measurement{}, fmt.Errorf("e12: drain: %w", err)
		}
	}
	elapsed := time.Since(start)

	var all latency.Digest
	for _, s := range lat {
		all.AddAll(s)
	}
	m := e12Measurement{
		events:     total,
		throughput: float64(total) / elapsed.Seconds(),
		p99:        all.P99(),
		shed:       shed.Load(),
	}
	return m, nil
}
