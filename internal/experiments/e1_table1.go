package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/workload"
)

// E1Table1 reproduces Table 1 of the paper: the provenance entities of one
// execution trace stored as (ID, CLASS, APPID, XML) rows. It prints the
// actual rows for the first hiring trace, verifies codec round-trip
// fidelity over a corpus of `traces` traces, and measures encode/decode
// throughput.
func E1Table1(traces int) (*Table, error) {
	d, err := workload.Hiring()
	if err != nil {
		return nil, err
	}
	sys, err := core.New(d, core.Config{})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	res := d.Simulate(workload.SimOptions{Seed: 1, Traces: traces, ViolationRate: 0.2, Visibility: 1.0})
	if err := sys.Ingest(res.Events); err != nil {
		return nil, err
	}
	if err := sys.CorrelateAll(); err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "E1",
		Title:   "Provenance entities of an execution trace as stored rows",
		Paper:   "Table 1 (storing the provenance entities of an execution trace)",
		Columns: []string{"ID", "CLASS", "APPID", "XML"},
	}
	app := sys.Store.AppIDs()[0]
	for _, row := range sys.Store.RowsForApp(app) {
		xml := row.XML
		if len(xml) > 96 {
			xml = xml[:93] + "..."
		}
		t.AddRow(row.ID, row.Class, row.AppID, xml)
	}

	// Round-trip fidelity and codec throughput over the whole corpus.
	var rows []store.Row
	for _, a := range sys.Store.AppIDs() {
		rows = append(rows, sys.Store.RowsForApp(a)...)
	}
	start := time.Now()
	var decoded int
	for _, r := range rows {
		n, e, err := store.DecodeRow(r)
		if err != nil {
			return nil, fmt.Errorf("round trip failed on %s: %v", r.ID, err)
		}
		if n != nil {
			if back, err := store.EncodeNode(n); err != nil || back.XML != r.XML {
				return nil, fmt.Errorf("re-encode mismatch on %s", r.ID)
			}
		} else {
			if back, err := store.EncodeEdge(e); err != nil || back.XML != r.XML {
				return nil, fmt.Errorf("re-encode mismatch on %s", r.ID)
			}
		}
		decoded++
	}
	elapsed := time.Since(start)
	t.Notes = append(t.Notes,
		fmt.Sprintf("round-trip verified on %d rows from %d traces (0 mismatches)", decoded, traces),
		fmt.Sprintf("decode+re-encode throughput: %.0f rows/sec", float64(decoded)/elapsed.Seconds()),
	)
	return t, nil
}
