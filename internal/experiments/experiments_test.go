package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs the whole suite at quick scale and sanity
// checks each table's shape. This is the smoke test cmd/benchrunner's
// users rely on.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, r := range All(true) {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tbl, err := r.Run()
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if tbl.ID != r.ID {
				t.Errorf("table ID %q, runner %q", tbl.ID, r.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Error("empty table")
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Errorf("row %d has %d cells, header has %d", i, len(row), len(tbl.Columns))
				}
			}
			out := tbl.Render()
			if !strings.Contains(out, tbl.Title) {
				t.Error("render lacks title")
			}
		})
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"}}
	tbl.AddRow("longcell", 42)
	tbl.AddRow(1.5, "x")
	tbl.Notes = append(tbl.Notes, "hello")
	out := tbl.Render()
	for _, want := range []string{"== X: demo ==", "longcell", "42", "1.500", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestE3ShapeHolds verifies the headline reproduction claims at small
// scale: perfect detection at full visibility for rules and the integrated
// baseline, and a severely degraded in-app baseline.
func TestE3ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tbl, err := E3Visibility(150, []float64{1.0, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	full := tbl.Rows[0]
	// Columns: vis, rules P, rules R, rules F1, indef%, integ P/R/F1, inapp P/R/F1.
	if full[3] != "1.000" {
		t.Errorf("rules F1 at visibility 1.0 = %s, want 1.000", full[3])
	}
	if full[7] != "1.000" {
		t.Errorf("integrated F1 at visibility 1.0 = %s, want 1.000", full[7])
	}
	if full[10] >= "0.900" {
		t.Errorf("in-app F1 at visibility 1.0 = %s, want far below 0.9", full[10])
	}
	low := tbl.Rows[1]
	if low[3] >= full[3] && low[3] != "1.000" {
		t.Logf("rules F1 did not drop at 0.7: %s vs %s (acceptable only if both perfect)", low[3], full[3])
	}
}
