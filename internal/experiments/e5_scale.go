package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/provenance"
	"repro/internal/query"
	"repro/internal/workload"
)

// E5Scale measures compliance checking against store size: ingest+correlate
// throughput, single-trace check latency, full-store sweep throughput, and
// the point-query cost with and without secondary indexes (ablation of
// design decision D4). The paper claims queries over the provenance store
// can "emit results in real-time, feeding existing dashboard systems".
func E5Scale(sizes []int) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "Compliance checking at scale",
		Paper: "§II-A: real-time queries over the provenance store",
		Columns: []string{"traces", "records", "ingest+corr ev/s",
			"check 1 trace", "sweep traces/s", "pt-query idx", "pt-query scan", "speedup"},
	}
	d, err := workload.Hiring()
	if err != nil {
		return nil, err
	}
	for _, n := range sizes {
		res := d.Simulate(workload.SimOptions{Seed: 77, Traces: n, ViolationRate: 0.2, Visibility: 1.0})

		sys, err := core.New(d, core.Config{})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := sys.Ingest(res.Events); err != nil {
			sys.Close()
			return nil, err
		}
		if err := sys.CorrelateAll(); err != nil {
			sys.Close()
			return nil, err
		}
		ingestRate := float64(len(res.Events)) / time.Since(start).Seconds()
		records := sys.Store.Stats().Rows

		// Single-trace check latency, averaged over a sample.
		apps := sys.Store.AppIDs()
		sample := apps
		if len(sample) > 200 {
			sample = sample[:200]
		}
		start = time.Now()
		for _, app := range sample {
			if _, err := sys.Registry.Check(app); err != nil {
				sys.Close()
				return nil, err
			}
		}
		perCheck := time.Since(start) / time.Duration(len(sample))

		// Full sweep.
		start = time.Now()
		if _, err := sys.CheckAll(); err != nil {
			sys.Close()
			return nil, err
		}
		sweepRate := float64(n) / time.Since(start).Seconds()

		// Point query: find the requisition with a given reqID, indexed.
		target := provenance.String(fmt.Sprintf("REQ-hiring-%06d", n/2))
		q := query.Query{Type: "jobRequisition", Preds: []query.Pred{
			{Field: "reqID", Op: query.Eq, Value: target},
		}}
		idxLat, err := timeQuery(sys.Query, q)
		if err != nil {
			sys.Close()
			return nil, err
		}
		sys.Close()

		// Same data with indexes disabled: the scan ablation.
		sysScan, err := core.New(d, core.Config{DisableIndexes: true})
		if err != nil {
			return nil, err
		}
		if err := sysScan.Ingest(res.Events); err != nil {
			sysScan.Close()
			return nil, err
		}
		scanLat, err := timeQuery(sysScan.Query, q)
		sysScan.Close()
		if err != nil {
			return nil, err
		}

		speedup := float64(scanLat) / float64(idxLat)
		t.AddRow(n, records, fmt.Sprintf("%.0f", ingestRate),
			perCheck.String(), fmt.Sprintf("%.0f", sweepRate),
			idxLat.String(), scanLat.String(), fmt.Sprintf("%.0fx", speedup))
	}
	t.Notes = append(t.Notes,
		"check 1 trace = all 3 hiring controls evaluated on one trace (trace-scoped, independent of store size)",
		"pt-query = equality lookup on jobRequisition.reqID; idx uses the declared secondary index, scan is the D4 ablation",
	)
	return t, nil
}

// timeQuery measures the average latency of a point query.
func timeQuery(eng *query.Engine, q query.Query) (time.Duration, error) {
	const reps = 50
	start := time.Now()
	for i := 0; i < reps; i++ {
		res, err := eng.Run(q)
		if err != nil {
			return 0, err
		}
		if len(res) != 1 {
			return 0, fmt.Errorf("point query returned %d rows", len(res))
		}
	}
	return time.Since(start) / reps, nil
}
