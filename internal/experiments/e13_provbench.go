package experiments

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/latency"
	"repro/internal/provbench"
)

// E13Provbench sweeps offered load through the open-loop provbench
// harness to locate the ingestion gateway's saturation knee, against
// the -sync-ingest ablation. Two SLO classes run concurrently —
// "interactive" (Poisson arrivals, small batches, many clients, Zipf
// rate skew) and "batch" (bursty gamma arrivals, large batches) — and
// each (mode, load) cell reports per-class p50/p99/p999 for admission
// latency, p99 ack latency, and p99 detection lag sampled against the
// continuous checker. Because the harness is open-loop, overload shows
// up as shed batches and latency inflation rather than as a quietly
// reduced offered rate.
func E13Provbench(duration time.Duration, baseRate float64, multipliers []float64) (*Table, error) {
	tbl := &Table{
		ID:    "E13",
		Title: "open-loop load sweep: async gateway vs sync ingest",
		Paper: "section V scalability — admission, ack and detection lag vs offered load",
		Columns: []string{
			"mode", "xload", "class", "offered/s", "admitted", "shed",
			"admit p50/p99/p999 us", "ack p50/p99/p999 us", "detect p50/p99/p999 us",
		},
	}
	for _, async := range []bool{true, false} {
		mode := "async"
		if !async {
			mode = "sync-ingest"
		}
		for _, mult := range multipliers {
			rep, err := e13Run(async, duration, baseRate*mult)
			if err != nil {
				return nil, fmt.Errorf("e13 %s x%g: %w", mode, mult, err)
			}
			trio := func(s latency.Summary) string {
				if s.Count == 0 {
					return "-"
				}
				return fmt.Sprintf("%d/%d/%d", s.P50US, s.P99US, s.P999US)
			}
			for _, c := range rep.Classes {
				tbl.AddRow(mode, fmt.Sprintf("x%g", mult), c.Class,
					fmt.Sprintf("%.0f", c.OfferedPerSec), c.Admitted, c.Shed,
					trio(c.Admit), trio(c.Ack), trio(c.Detect))
			}
		}
	}
	tbl.Notes = append(tbl.Notes,
		"open-loop: the schedule never back-pressures, so overload appears as shed batches and latency, not a lower offered rate",
		"the saturation knee is where shed turns nonzero (async) or admit p99 inflects (sync-ingest)",
		"detect p99 is offer -> continuous checker caught up past the op's commit, sampled every 8th admitted op",
	)
	return tbl, nil
}

// e13Run executes one (mode, rate) cell on a fresh durable system.
func e13Run(async bool, duration time.Duration, rate float64) (*provbench.Report, error) {
	dir, err := os.MkdirTemp("", "e13-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	d, err := provbench.DomainFor("hiring")
	if err != nil {
		return nil, err
	}
	sys, err := core.New(d, core.Config{
		Dir: dir, Sync: true, Continuous: true,
		DisableAsyncIngest: !async,
		IngestQueueDepth:   512,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	spec := provbench.Spec{
		Name:     fmt.Sprintf("e13-%t-%.0f", async, rate),
		Seed:     13,
		Duration: provbench.Dur(duration),
		Classes: []provbench.ClientClass{
			{
				Name: "interactive", Domain: "hiring", Clients: 8,
				RatePerSec: 0.8 * rate, Skew: 1,
				Arrival:  provbench.ArrivalSpec{Process: "poisson"},
				BatchMin: 4, BatchMax: 8, ViolationRate: 0.2,
			},
			{
				Name: "batch", Domain: "hiring", Clients: 2,
				RatePerSec: 0.2 * rate,
				Arrival:    provbench.ArrivalSpec{Process: "gamma", Shape: 0.5},
				BatchMin:   32, BatchMax: 64, ViolationRate: 0.2,
			},
		},
	}
	sched, err := provbench.Generate(spec)
	if err != nil {
		return nil, err
	}
	return provbench.Run(sched, &provbench.SystemTarget{Sys: sys}, provbench.Options{
		DetectEvery: 8,
		AckPoll:     time.Millisecond,
	})
}
