// Package experiments regenerates every table and figure of the
// reproduction (experiment index E1-E8 in DESIGN.md). The paper itself
// publishes no measured results — it is an architecture proposal — so E1
// and E2 reproduce its concrete artifacts (Table 1's storage rows, Fig 1/2's
// example trace and control subgraph, Fig 3's authoring pipeline) and
// E3-E8 measure the claims its prose makes. cmd/benchrunner prints these
// tables; bench_test.go wraps the same code in testing.B benchmarks.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is one experiment's output: a titled grid plus free-form notes.
type Table struct {
	ID      string
	Title   string
	Paper   string // the paper artifact or claim this reproduces
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render draws the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Paper != "" {
		fmt.Fprintf(&b, "   paper anchor: %s\n", t.Paper)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Runner enumerates every experiment for cmd/benchrunner.
type Runner struct {
	ID   string
	Name string
	Run  func() (*Table, error)
}

// All returns the full experiment suite with default parameters. quick
// shrinks the workloads for fast smoke runs.
func All(quick bool) []Runner {
	traces := 2000
	e5Sizes := []int{1000, 5000, 10000, 25000}
	e6Traces := 2000
	e7Sizes := []int{10, 100, 1000, 10000}
	e11Sizes := []int{250, 1000, 4000}
	e12Traces := 800
	e12Writers := []int{1, 4, 16}
	e13Duration := 1500 * time.Millisecond
	e13Rate := 300.0
	e13Mults := []float64{0.5, 1, 2, 4}
	e14Sizes := []int{1000, 4000, 16000}
	e14Commits := 64
	e14Duration := 1200 * time.Millisecond
	e14Rate := 200.0
	e15Sizes := []int{1000, 10000}
	e16Duration := 2 * time.Second
	e16OverheadRate := 25.0
	e16ScaleRate := 900.0
	e16Shards := []int{1, 2, 4}
	e17Duration := 3 * time.Second
	e17QuietRate := 10.0
	e17NoisyRate := 150.0
	if quick {
		traces = 300
		e5Sizes = []int{200, 500, 1000}
		e6Traces = 200
		e7Sizes = []int{10, 100, 1000}
		e11Sizes = []int{250, 1000}
		e12Traces = 120
		e12Writers = []int{1, 4}
		e13Duration = 400 * time.Millisecond
		e13Rate = 150
		e13Mults = []float64{0.5, 2, 6}
		e14Sizes = []int{250, 1000}
		e14Commits = 24
		e14Duration = 400 * time.Millisecond
		e14Rate = 100
		e15Sizes = []int{150, 1500}
		e16Duration = 400 * time.Millisecond
		e16OverheadRate = 20
		e16ScaleRate = 300
		e16Shards = []int{1, 2}
		e17Duration = 600 * time.Millisecond
		e17QuietRate = 10
		e17NoisyRate = 150
	}
	return []Runner{
		{"E1", "Table 1 storage rows", func() (*Table, error) { return E1Table1(traces) }},
		{"E2", "Fig 1/2 trace and control subgraph", E2Fig2},
		{"E3", "detection vs visibility", func() (*Table, error) {
			return E3Visibility(traces, []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5})
		}},
		{"E4", "Fig 3 authoring pipeline", E4Authoring},
		{"E5", "compliance checking at scale", func() (*Table, error) { return E5Scale(e5Sizes) }},
		{"E6", "continuous vs batch checking", func() (*Table, error) { return E6Continuous(e6Traces) }},
		{"E7", "vocabulary scaling", func() (*Table, error) { return E7VocabScale(e7Sizes) }},
		{"E8", "control change cost", E8ChangeCost},
		{"E11", "index-accelerated rule evaluation", func() (*Table, error) {
			return E11RuleIndex(e11Sizes, 16)
		}},
		{"E12", "async ingestion gateway vs sync ingest", func() (*Table, error) {
			return E12Ingest(e12Traces, e12Writers)
		}},
		{"E13", "open-loop load sweep (provbench)", func() (*Table, error) {
			return E13Provbench(e13Duration, e13Rate, e13Mults)
		}},
		{"E14", "delta-driven evaluation vs full re-evaluation", func() (*Table, error) {
			return E14Delta(e14Sizes, e14Commits, e14Duration, e14Rate)
		}},
		{"E15", "tiered storage vs all-resident ablation", func() (*Table, error) {
			return E15Tiering(e15Sizes)
		}},
		{"E16", "sharded cluster scale-out vs single node", func() (*Table, error) {
			return E16Cluster(e16Duration, e16OverheadRate, e16ScaleRate, e16Shards)
		}},
		{"E17", "multi-tenant fair-share checking vs single FIFO", func() (*Table, error) {
			return E17Tenants(e17Duration, e17QuietRate, e17NoisyRate)
		}},
	}
}
