// Package dashboard aggregates compliance outcomes into the key
// performance indicators the paper's Section II-A describes: "a query can
// be deployed into the provenance store to emit results in real-time,
// feeding existing dashboard systems to display key performance
// indicators". The board keeps the latest verdict per (control, trace),
// computes per-control KPIs, and maintains a feed of violation
// transitions.
package dashboard

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/controls"
	"repro/internal/rules"
)

// KPI summarizes one control across every checked trace.
type KPI struct {
	ControlID     string
	Name          string
	Total         int
	Satisfied     int
	Violated      int
	Indeterminate int
	NotApplicable int
	// ComplianceRate is Satisfied / (Satisfied + Violated); NaN-free: 0
	// when no definite verdict exists.
	ComplianceRate float64
	// DefiniteRate is (Satisfied + Violated) / Total: how often the
	// control could decide at all — the visibility signal of E3.
	DefiniteRate float64
}

// Violation is one entry of the violation feed.
type Violation struct {
	ControlID string
	AppID     string
	Alerts    []string
	Notes     []string
	// Seq orders violations by arrival.
	Seq int
}

// Board aggregates outcomes. Safe for concurrent use; feed it from a
// controls.Checker callback or from batch CheckAll results.
type Board struct {
	mu         sync.RWMutex
	names      map[string]string
	latest     map[string]map[string]rules.Verdict // controlID -> appID -> verdict
	violations []Violation
	maxViol    int
	seq        int
}

// New builds a board that retains at most maxViolations feed entries
// (oldest dropped first). maxViolations <= 0 means 1000.
func New(maxViolations int) *Board {
	if maxViolations <= 0 {
		maxViolations = 1000
	}
	return &Board{
		names:   make(map[string]string),
		latest:  make(map[string]map[string]rules.Verdict),
		maxViol: maxViolations,
	}
}

// Record folds a batch of outcomes into the board. Re-checking a trace
// replaces its previous verdict rather than double counting; a transition
// into Violated appends to the violation feed.
func (b *Board) Record(outcomes []*controls.Outcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, o := range outcomes {
		if o == nil || o.Result == nil {
			continue
		}
		b.names[o.ControlID] = o.Name
		perApp := b.latest[o.ControlID]
		if perApp == nil {
			perApp = make(map[string]rules.Verdict)
			b.latest[o.ControlID] = perApp
		}
		prev := perApp[o.Result.AppID]
		perApp[o.Result.AppID] = o.Result.Verdict
		if o.Result.Verdict == rules.Violated && prev != rules.Violated {
			b.seq++
			b.violations = append(b.violations, Violation{
				ControlID: o.ControlID,
				AppID:     o.Result.AppID,
				Alerts:    append([]string(nil), o.Result.Alerts...),
				Notes:     append([]string(nil), o.Result.Notes...),
				Seq:       b.seq,
			})
			if len(b.violations) > b.maxViol {
				b.violations = b.violations[len(b.violations)-b.maxViol:]
			}
		}
	}
}

// Snapshot computes the per-control KPIs, sorted by control ID.
func (b *Board) Snapshot() []KPI {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]KPI, 0, len(b.latest))
	for id, perApp := range b.latest {
		k := KPI{ControlID: id, Name: b.names[id]}
		for _, v := range perApp {
			k.Total++
			switch v {
			case rules.Satisfied:
				k.Satisfied++
			case rules.Violated:
				k.Violated++
			case rules.Indeterminate:
				k.Indeterminate++
			case rules.NotApplicable:
				k.NotApplicable++
			}
		}
		if def := k.Satisfied + k.Violated; def > 0 {
			k.ComplianceRate = float64(k.Satisfied) / float64(def)
		}
		if k.Total > 0 {
			k.DefiniteRate = float64(k.Satisfied+k.Violated) / float64(k.Total)
		}
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ControlID < out[j].ControlID })
	return out
}

// RecentViolations returns up to n feed entries, newest first.
func (b *Board) RecentViolations(n int) []Violation {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if n <= 0 || n > len(b.violations) {
		n = len(b.violations)
	}
	out := make([]Violation, n)
	for i := 0; i < n; i++ {
		out[i] = b.violations[len(b.violations)-1-i]
	}
	return out
}

// Render draws the KPI table as text, the form cmd/pctl prints.
func (b *Board) Render() string {
	kpis := b.Snapshot()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %8s %10s %9s %7s %6s %11s %9s\n",
		"CONTROL", "TRACES", "SATISFIED", "VIOLATED", "INDET", "N/A", "COMPLIANCE", "DEFINITE")
	for _, k := range kpis {
		fmt.Fprintf(&sb, "%-24s %8d %10d %9d %7d %6d %10.1f%% %8.1f%%\n",
			k.ControlID, k.Total, k.Satisfied, k.Violated, k.Indeterminate, k.NotApplicable,
			100*k.ComplianceRate, 100*k.DefiniteRate)
	}
	return sb.String()
}
