package dashboard

import (
	"strings"
	"testing"

	"repro/internal/controls"
	"repro/internal/rules"
)

func outcome(control, app string, v rules.Verdict, alerts ...string) *controls.Outcome {
	return &controls.Outcome{
		ControlID: control, Name: "Control " + control, Version: 1,
		Result: &rules.Result{AppID: app, Verdict: v, Alerts: alerts},
	}
}

func TestBoardKPIs(t *testing.T) {
	b := New(0)
	b.Record([]*controls.Outcome{
		outcome("c1", "A1", rules.Satisfied),
		outcome("c1", "A2", rules.Violated, "boom"),
		outcome("c1", "A3", rules.Indeterminate),
		outcome("c1", "A4", rules.NotApplicable),
		outcome("c2", "A1", rules.Satisfied),
	})
	kpis := b.Snapshot()
	if len(kpis) != 2 {
		t.Fatalf("kpis = %d", len(kpis))
	}
	c1 := kpis[0]
	if c1.ControlID != "c1" || c1.Total != 4 || c1.Satisfied != 1 || c1.Violated != 1 ||
		c1.Indeterminate != 1 || c1.NotApplicable != 1 {
		t.Fatalf("c1 = %+v", c1)
	}
	if c1.ComplianceRate != 0.5 || c1.DefiniteRate != 0.5 {
		t.Fatalf("rates = %v / %v", c1.ComplianceRate, c1.DefiniteRate)
	}
	if kpis[1].ComplianceRate != 1.0 {
		t.Fatalf("c2 = %+v", kpis[1])
	}
}

func TestBoardRecheckReplacesVerdict(t *testing.T) {
	b := New(0)
	b.Record([]*controls.Outcome{outcome("c1", "A1", rules.Violated, "first")})
	b.Record([]*controls.Outcome{outcome("c1", "A1", rules.Satisfied)})
	kpis := b.Snapshot()
	if kpis[0].Total != 1 || kpis[0].Satisfied != 1 || kpis[0].Violated != 0 {
		t.Fatalf("kpi = %+v", kpis[0])
	}
}

func TestBoardViolationFeedTransitionsOnly(t *testing.T) {
	b := New(0)
	b.Record([]*controls.Outcome{outcome("c1", "A1", rules.Violated, "a1 broke")})
	// Re-checking the same violated trace must not duplicate the entry.
	b.Record([]*controls.Outcome{outcome("c1", "A1", rules.Violated, "a1 broke")})
	// Flipping to satisfied and back violates again: a new entry.
	b.Record([]*controls.Outcome{outcome("c1", "A1", rules.Satisfied)})
	b.Record([]*controls.Outcome{outcome("c1", "A1", rules.Violated, "a1 broke again")})
	got := b.RecentViolations(0)
	if len(got) != 2 {
		t.Fatalf("violations = %d", len(got))
	}
	if got[0].Alerts[0] != "a1 broke again" || got[1].Alerts[0] != "a1 broke" {
		t.Fatalf("feed order = %+v", got)
	}
}

func TestBoardViolationCap(t *testing.T) {
	b := New(3)
	for i := 0; i < 10; i++ {
		app := string(rune('A' + i))
		b.Record([]*controls.Outcome{outcome("c1", app, rules.Violated)})
	}
	got := b.RecentViolations(0)
	if len(got) != 3 {
		t.Fatalf("capped feed = %d", len(got))
	}
	if got[0].AppID != "J" {
		t.Fatalf("newest = %+v", got[0])
	}
	if top := b.RecentViolations(1); len(top) != 1 || top[0].AppID != "J" {
		t.Fatalf("RecentViolations(1) = %+v", top)
	}
}

func TestBoardRender(t *testing.T) {
	b := New(0)
	b.Record([]*controls.Outcome{
		outcome("gm-approval", "A1", rules.Satisfied),
		outcome("gm-approval", "A2", rules.Violated),
	})
	out := b.Render()
	if !strings.Contains(out, "gm-approval") || !strings.Contains(out, "50.0%") {
		t.Fatalf("Render = %s", out)
	}
	if !strings.Contains(out, "CONTROL") {
		t.Fatal("header missing")
	}
}

func TestBoardIgnoresNil(t *testing.T) {
	b := New(0)
	b.Record([]*controls.Outcome{nil, {ControlID: "x"}})
	if len(b.Snapshot()) != 0 {
		t.Fatal("nil outcomes counted")
	}
}
