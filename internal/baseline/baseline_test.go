package baseline_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/workload"
)

func run(t testing.TB, h baseline.Harness, res *workload.SimResult) {
	t.Helper()
	for _, ev := range res.Events {
		h.Observe(ev)
	}
}

// TestIntegratedMatchesGroundTruth: with every source visible and full
// visibility, the hand-coded checks reproduce the seeded ground truth —
// establishing that the baseline logic itself is correct, so E3's
// differences come from scope and two-valuedness, not from bugs.
func TestIntegratedMatchesGroundTruth(t *testing.T) {
	for _, build := range []func() (*workload.Domain, error){
		workload.Hiring, workload.Procurement, workload.Claims,
	} {
		d, err := build()
		if err != nil {
			t.Fatal(err)
		}
		h, ok := baseline.ForDomain(d.Name, baseline.ScopeIntegrated())
		if !ok {
			t.Fatalf("no baseline for %s", d.Name)
		}
		res := d.Simulate(workload.SimOptions{Seed: 17, Traces: 300, ViolationRate: 0.3, Visibility: 1.0})
		run(t, h, res)
		for app, truth := range res.Truth {
			for control, v := range h.Verdicts(app) {
				want := baseline.Satisfied
				if truth.Violation && truth.ControlID == control {
					want = baseline.Violated
				}
				if v != want {
					t.Errorf("%s %s %s: verdict %v, want %v (truth %+v)",
						d.Name, app, control, v, want, truth)
				}
			}
		}
	}
}

// TestInAppScopeDegradesDetection: an in-application baseline cannot see
// the unmanaged systems, so it fails in one of two ways per control —
// blindness (evidence of the violation never arrives: recall collapses)
// or an alarm storm (required evidence never arrives, so the check fires
// on every trace: precision collapses). Either way the F1 score over all
// (trace, control) decisions must fall well below the integrated
// baseline's perfect score.
func TestInAppScopeDegradesDetection(t *testing.T) {
	for _, build := range []func() (*workload.Domain, error){
		workload.Hiring, workload.Procurement, workload.Claims,
	} {
		d, err := build()
		if err != nil {
			t.Fatal(err)
		}
		scope, ok := baseline.InAppScope(d.Name)
		if !ok {
			t.Fatalf("no in-app scope for %s", d.Name)
		}
		h, _ := baseline.ForDomain(d.Name, scope)
		res := d.Simulate(workload.SimOptions{Seed: 23, Traces: 300, ViolationRate: 0.4, Visibility: 1.0})
		run(t, h, res)

		var tp, fp, fn int
		for app, truth := range res.Truth {
			for control, v := range h.Verdicts(app) {
				positive := truth.Violation && truth.ControlID == control
				fired := v == baseline.Violated
				switch {
				case positive && fired:
					tp++
				case !positive && fired:
					fp++
				case positive && !fired:
					fn++
				}
			}
		}
		if tp+fn == 0 {
			t.Fatalf("%s: no violations seeded", d.Name)
		}
		f1 := 0.0
		if 2*tp+fp+fn > 0 {
			f1 = 2 * float64(tp) / float64(2*tp+fp+fn)
		}
		if f1 > 0.85 {
			t.Errorf("%s: in-app F1 = %.2f (tp=%d fp=%d fn=%d), expected severe degradation",
				d.Name, f1, tp, fp, fn)
		}
	}
}

// TestInAppScopeFalseAlarms: procurement's in-app PO-approval check fires
// on every large PO because approvals travel by mail — quantifying the
// false-positive cost of enforcing a cross-system control in-app.
func TestInAppScopeFalseAlarms(t *testing.T) {
	d, err := workload.Procurement()
	if err != nil {
		t.Fatal(err)
	}
	h, _ := baseline.ForDomain(d.Name, baseline.ProcurementInAppScope())
	res := d.Simulate(workload.SimOptions{Seed: 29, Traces: 300, ViolationRate: 0.0, Visibility: 1.0})
	run(t, h, res)
	fp := 0
	for app := range res.Truth {
		if h.Verdicts(app)["po-approval"] == baseline.Violated {
			fp++
		}
	}
	if fp == 0 {
		t.Error("expected in-app false alarms on compliant large POs")
	}
}

func TestUnknownTraceReportsSatisfied(t *testing.T) {
	h := baseline.NewHiring(baseline.ScopeIntegrated())
	v := h.Verdicts("never-seen")
	if len(v) != 3 {
		t.Fatalf("verdicts = %v", v)
	}
	for id, verdict := range v {
		if verdict != baseline.Satisfied {
			t.Errorf("%s = %v", id, verdict)
		}
	}
}

func TestForDomainUnknown(t *testing.T) {
	if _, ok := baseline.ForDomain("nope", baseline.ScopeIntegrated()); ok {
		t.Error("unknown domain resolved")
	}
	if _, ok := baseline.InAppScope("nope"); ok {
		t.Error("unknown scope resolved")
	}
}

func TestVerdictString(t *testing.T) {
	if baseline.Satisfied.String() != "satisfied" || baseline.Violated.String() != "violated" {
		t.Error("verdict names wrong")
	}
}

func BenchmarkBaselineObserve(b *testing.B) {
	d, err := workload.Hiring()
	if err != nil {
		b.Fatal(err)
	}
	res := d.Simulate(workload.SimOptions{Seed: 1, Traces: 100, ViolationRate: 0.3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := baseline.NewHiring(baseline.ScopeIntegrated())
		for _, ev := range res.Events {
			h.Observe(ev)
		}
	}
}
