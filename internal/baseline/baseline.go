// Package baseline implements the comparator the paper argues against:
// internal controls "buried into the application code", hand-written in Go
// against the raw application event stream.
//
// Two scopes model the two situations an IT organization can be in:
//
//   - ScopeInApp: the control lives inside one application and sees only
//     that application's events — the traditional pre-integration reality.
//     Evidence produced in other systems (e-mail approvals, warehouse
//     scans) simply never arrives, so cross-system violations are
//     undetectable.
//   - ScopeIntegrated: the control sees every source, i.e. someone already
//     paid for the cross-system integration the paper's provenance
//     capture provides. Accuracy then matches the rule engine, but every
//     control change is a code change (experiment E8).
//
// Baseline verdicts are two-valued: hard-coded checks have no notion of
// "the evidence may exist but was not captured", which is what experiment
// E3 measures against the rule engine's three-valued verdicts.
package baseline

import (
	"strconv"

	"repro/internal/events"
)

// Scope selects which sources a baseline harness can observe. A nil or
// empty set means every source (integrated).
type Scope struct {
	// Sources is the set of visible application sources.
	Sources map[string]bool
}

// ScopeIntegrated sees everything.
func ScopeIntegrated() Scope { return Scope{} }

// sees reports whether an event is visible in this scope.
func (s Scope) sees(ev events.AppEvent) bool {
	return len(s.Sources) == 0 || s.Sources[ev.Source]
}

// Verdict is the two-valued baseline outcome.
type Verdict bool

const (
	// Satisfied means the hard-coded check found no violation.
	Satisfied Verdict = true
	// Violated means the hard-coded check fired.
	Violated Verdict = false
)

// String renders the verdict.
func (v Verdict) String() string {
	if v == Satisfied {
		return "satisfied"
	}
	return "violated"
}

// Harness is a per-domain set of hard-coded checks.
type Harness interface {
	// Observe consumes one application event.
	Observe(ev events.AppEvent)
	// Verdicts returns controlID -> verdict for one trace. Traces never
	// observed report every control satisfied (the baseline cannot know
	// they exist).
	Verdicts(appID string) map[string]Verdict
	// ControlIDs lists the implemented controls, matching the rule-based
	// control IDs of the corresponding workload domain.
	ControlIDs() []string
}

// ---------------------------------------------------------------------
// Hiring: hand-coded versions of gm-approval, four-eyes and
// no-reject-proceed. Note how each control's logic is interleaved with
// event parsing and state management — the maintainability cost the paper
// attributes to code-level controls.
// ---------------------------------------------------------------------

type hiringState struct {
	positionType   string
	submitterEmail string
	sawApproval    bool
	approved       bool
	approverEmail  string
	sawCandidates  bool
}

// HiringHarness is the hand-coded hiring control set.
type HiringHarness struct {
	scope Scope
	state map[string]*hiringState
}

// NewHiring builds the hiring baseline in the given scope. The in-app
// scope for hiring is the Lombardi workflow plus the HR directory —
// exactly the managed systems; mail and the HR candidate database are
// other applications.
func NewHiring(scope Scope) *HiringHarness {
	return &HiringHarness{scope: scope, state: make(map[string]*hiringState)}
}

// HiringInAppScope is the scope of a control implemented inside Lombardi.
func HiringInAppScope() Scope {
	return Scope{Sources: map[string]bool{"lombardi": true, "hrdir": true}}
}

// Observe implements Harness.
func (h *HiringHarness) Observe(ev events.AppEvent) {
	if !h.scope.sees(ev) || ev.AppID == "" {
		return
	}
	st := h.state[ev.AppID]
	if st == nil {
		st = &hiringState{}
		h.state[ev.AppID] = st
	}
	switch ev.Type {
	case "requisition.submitted":
		st.positionType = ev.Payload["ptype"]
		st.submitterEmail = ev.Payload["submitterEmail"]
	case "approval.recorded":
		st.sawApproval = true
		st.approved = ev.Payload["approved"] == "true"
		st.approverEmail = ev.Payload["approverEmail"]
	case "candidates.found":
		st.sawCandidates = true
	}
}

// Verdicts implements Harness.
func (h *HiringHarness) Verdicts(appID string) map[string]Verdict {
	st := h.state[appID]
	if st == nil {
		st = &hiringState{}
	}
	gm := Satisfied
	if st.positionType == "new" && st.sawCandidates && !st.sawApproval {
		gm = Violated
	}
	fourEyes := Satisfied
	if st.sawApproval && st.approverEmail != "" && st.approverEmail == st.submitterEmail {
		fourEyes = Violated
	}
	noReject := Satisfied
	if st.sawApproval && !st.approved && st.sawCandidates {
		noReject = Violated
	}
	return map[string]Verdict{
		"gm-approval":       gm,
		"four-eyes":         fourEyes,
		"no-reject-proceed": noReject,
	}
}

// ControlIDs implements Harness.
func (h *HiringHarness) ControlIDs() []string {
	return []string{"gm-approval", "four-eyes", "no-reject-proceed"}
}

// ---------------------------------------------------------------------
// Procurement: three-way match, invoice tolerance, PO approval threshold.
// ---------------------------------------------------------------------

type procurementState struct {
	poAmount      float64
	sawPO         bool
	sawApproval   bool
	sawReceipt    bool
	sawInvoice    bool
	invoiceAmount float64
	sawPayment    bool
}

// ProcurementHarness is the hand-coded procurement control set.
type ProcurementHarness struct {
	scope Scope
	state map[string]*procurementState
}

// NewProcurement builds the procurement baseline.
func NewProcurement(scope Scope) *ProcurementHarness {
	return &ProcurementHarness{scope: scope, state: make(map[string]*procurementState)}
}

// ProcurementInAppScope is the scope of controls implemented inside the
// ERP: the warehouse system and the e-mail approvals are invisible.
func ProcurementInAppScope() Scope {
	return Scope{Sources: map[string]bool{"erp": true, "ap": true, "hrdir": true}}
}

// Observe implements Harness.
func (h *ProcurementHarness) Observe(ev events.AppEvent) {
	if !h.scope.sees(ev) || ev.AppID == "" {
		return
	}
	st := h.state[ev.AppID]
	if st == nil {
		st = &procurementState{}
		h.state[ev.AppID] = st
	}
	switch ev.Type {
	case "po.created":
		st.sawPO = true
		st.poAmount, _ = strconv.ParseFloat(ev.Payload["amount"], 64)
	case "po.approved":
		st.sawApproval = true
	case "goods.received":
		st.sawReceipt = true
	case "invoice.posted":
		st.sawInvoice = true
		st.invoiceAmount, _ = strconv.ParseFloat(ev.Payload["amount"], 64)
	case "payment.released":
		st.sawPayment = true
	}
}

// Verdicts implements Harness.
func (h *ProcurementHarness) Verdicts(appID string) map[string]Verdict {
	st := h.state[appID]
	if st == nil {
		st = &procurementState{}
	}
	match := Satisfied
	if st.sawPayment && (!st.sawReceipt || !st.sawInvoice) {
		match = Violated
	}
	tolerance := Satisfied
	if st.sawInvoice && st.sawPO && st.invoiceAmount > st.poAmount*1.05 {
		tolerance = Violated
	}
	approval := Satisfied
	if st.sawPO && st.poAmount > 10000 && !st.sawApproval {
		approval = Violated
	}
	return map[string]Verdict{
		"three-way-match":   match,
		"invoice-tolerance": tolerance,
		"po-approval":       approval,
	}
}

// ControlIDs implements Harness.
func (h *ProcurementHarness) ControlIDs() []string {
	return []string{"three-way-match", "invoice-tolerance", "po-approval"}
}

// ---------------------------------------------------------------------
// Claims: senior approval, adjuster independence, estimate bound.
// ---------------------------------------------------------------------

type claimsState struct {
	claimantEmail string
	adjusterEmail string
	sawAssignment bool
	sawEstimate   bool
	estimate      float64
	sawApproval   bool
	approvalLevel string
	sawPayout     bool
	payout        float64
}

// ClaimsHarness is the hand-coded claims control set.
type ClaimsHarness struct {
	scope Scope
	state map[string]*claimsState
}

// NewClaims builds the claims baseline.
func NewClaims(scope Scope) *ClaimsHarness {
	return &ClaimsHarness{scope: scope, state: make(map[string]*claimsState)}
}

// ClaimsInAppScope is the scope of controls implemented inside the policy
// system: the adjuster's field tool and e-mail approvals are invisible.
func ClaimsInAppScope() Scope {
	return Scope{Sources: map[string]bool{"portal": true, "dispatch": true, "policy": true, "hrdir": true}}
}

// Observe implements Harness.
func (h *ClaimsHarness) Observe(ev events.AppEvent) {
	if !h.scope.sees(ev) || ev.AppID == "" {
		return
	}
	st := h.state[ev.AppID]
	if st == nil {
		st = &claimsState{}
		h.state[ev.AppID] = st
	}
	switch ev.Type {
	case "claim.filed":
		st.claimantEmail = ev.Payload["claimantEmail"]
	case "adjuster.assigned":
		st.sawAssignment = true
		st.adjusterEmail = ev.Payload["adjusterEmail"]
	case "estimate.recorded":
		st.sawEstimate = true
		st.estimate, _ = strconv.ParseFloat(ev.Payload["amount"], 64)
	case "payout.approved":
		st.sawApproval = true
		st.approvalLevel = ev.Payload["level"]
	case "payout.released":
		st.sawPayout = true
		st.payout, _ = strconv.ParseFloat(ev.Payload["amount"], 64)
	}
}

// Verdicts implements Harness.
func (h *ClaimsHarness) Verdicts(appID string) map[string]Verdict {
	st := h.state[appID]
	if st == nil {
		st = &claimsState{}
	}
	senior := Satisfied
	if st.sawPayout && st.payout > 10000 && !(st.sawApproval && st.approvalLevel == "senior") {
		senior = Violated
	}
	independence := Satisfied
	if st.sawAssignment && st.adjusterEmail != "" && st.adjusterEmail == st.claimantEmail {
		independence = Violated
	}
	bound := Satisfied
	if st.sawPayout && st.sawEstimate && st.payout > st.estimate*1.2 {
		bound = Violated
	}
	return map[string]Verdict{
		"senior-approval":       senior,
		"adjuster-independence": independence,
		"estimate-bound":        bound,
	}
}

// ControlIDs implements Harness.
func (h *ClaimsHarness) ControlIDs() []string {
	return []string{"senior-approval", "adjuster-independence", "estimate-bound"}
}

// ForDomain returns the baseline harness matching a workload domain name,
// in the given scope; ok is false for unknown domains.
func ForDomain(name string, scope Scope) (Harness, bool) {
	switch name {
	case "hiring":
		return NewHiring(scope), true
	case "procurement":
		return NewProcurement(scope), true
	case "claims":
		return NewClaims(scope), true
	default:
		return nil, false
	}
}

// InAppScope returns the in-application scope for a domain; ok is false
// for unknown domains.
func InAppScope(name string) (Scope, bool) {
	switch name {
	case "hiring":
		return HiringInAppScope(), true
	case "procurement":
		return ProcurementInAppScope(), true
	case "claims":
		return ClaimsInAppScope(), true
	default:
		return Scope{}, false
	}
}
