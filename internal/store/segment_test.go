package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sealRows builds one trace's segTraceRows from synthetic rows.
func sealRows(app string, ver, last uint64, nRows int) segTraceRows {
	tr := segTraceRows{app: app, ver: ver, last: last, classes: []string{"data"}, types: []string{"jobRequisition"}}
	for i := 0; i < nRows; i++ {
		tr.rows = append(tr.rows, entry{op: opPutNode, row: Row{
			ID:    fmt.Sprintf("%s-r%03d", app, i),
			Class: "data",
			AppID: app,
			XML:   fmt.Sprintf("<ps:jobRequisition ps:id=%q>%s</ps:jobRequisition>", fmt.Sprintf("%s-r%03d", app, i), strings.Repeat("x", 50)),
		}})
	}
	return tr
}

func TestSegmentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-00000001.seg")
	// Small block target forces multiple blocks; traces given unsorted to
	// exercise the writer's sort.
	traces := []segTraceRows{
		sealRows("C", 7, 31, 12),
		sealRows("A", 3, 10, 4),
		sealRows("B", 5, 20, 40),
	}
	ft, err := writeSegment(OSFS{}, path, 31, traces, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Blocks) < 2 {
		t.Fatalf("expected multiple blocks, got %d", len(ft.Blocks))
	}
	if ft.MinApp != "A" || ft.MaxApp != "C" || ft.MinSeq != 10 || ft.MaxSeq != 31 {
		t.Fatalf("zone map = %s..%s / %d..%d", ft.MinApp, ft.MaxApp, ft.MinSeq, ft.MaxSeq)
	}

	seg, err := openSegment(OSFS{}, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if seg.nTraces != 3 || seg.nRows != 56 || seg.sealSeq != 31 {
		t.Fatalf("segment = %+v", seg)
	}
	rft, err := seg.readFooter()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []struct {
		app  string
		ver  uint64
		rows int
	}{{"A", 3, 4}, {"B", 5, 40}, {"C", 7, 12}} {
		tr, ok := rft.findTrace(want.app)
		if !ok || tr.Ver != want.ver || tr.Rows != want.rows {
			t.Fatalf("findTrace(%s) = %+v %v", want.app, tr, ok)
		}
		if !seg.bloomTrace.mightContain(want.app) {
			t.Fatalf("trace bloom misses %s", want.app)
		}
		es, err := seg.readBlock(rft, tr.Blk)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for _, e := range es {
			if e.row.AppID == want.app {
				got++
				if !strings.Contains(e.row.XML, e.row.ID) {
					t.Fatalf("row %s round-tripped wrong XML", e.row.ID)
				}
			}
		}
		if got != want.rows {
			t.Fatalf("block holds %d rows of %s, want %d", got, want.app, want.rows)
		}
	}
	if !seg.bloomClass.mightContain("data") || !seg.bloomType.mightContain("jobRequisition") {
		t.Fatal("class/type blooms miss their keys")
	}
	// The row-ID bloom covers every sealed record ID — it is the routing
	// path for raw-ID cold reads once the router entries are evicted.
	if seg.bloomID == nil {
		t.Fatal("segment sealed without a row-ID bloom")
	}
	for _, tr := range traces {
		for _, e := range tr.rows {
			if !seg.bloomID.mightContain(e.row.ID) {
				t.Fatalf("row-ID bloom misses %s", e.row.ID)
			}
		}
	}
	if _, ok := rft.findTrace("nope"); ok {
		t.Fatal("findTrace invented a trace")
	}
}

func TestSegmentRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-00000001.seg")
	if _, err := writeSegment(OSFS{}, path, 9, []segTraceRows{sealRows("A", 2, 9, 8)}, 0); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	damage := func(name string, mutate func([]byte) []byte) {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, mutate(append([]byte(nil), raw...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := openSegment(OSFS{}, p, 2); err == nil {
			t.Fatalf("%s: damaged segment validated", name)
		}
	}
	damage("truncated.seg", func(b []byte) []byte { return b[:len(b)/2] })
	damage("no-trailer.seg", func(b []byte) []byte { return b[:len(b)-3] })
	damage("bad-magic.seg", func(b []byte) []byte { b[0] ^= 0xff; return b })
	damage("bad-footer.seg", func(b []byte) []byte { b[len(b)-40] ^= 0xff; return b })

	// A flipped byte inside a data block passes open (only the footer is
	// validated there) but fails the block read's CRC.
	p := filepath.Join(dir, "bad-block.seg")
	mut := append([]byte(nil), raw...)
	mut[len(segMagic)+12] ^= 0xff
	if err := os.WriteFile(p, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	seg, err := openSegment(OSFS{}, p, 3)
	if err != nil {
		t.Fatalf("block damage rejected at open: %v", err)
	}
	ft, err := seg.readFooter()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seg.readBlock(ft, 0); err == nil {
		t.Fatal("corrupt block read succeeded")
	}
}
