// Package store implements the provenance store of the paper's Section
// II-A: every provenance record is persisted as a row (ID, CLASS, APPID,
// XML) exactly as in Table 1, appended to a crash-safe disk log, and
// indexed in memory for the query engine. The store exposes a change feed
// so that correlation analytics and continuous compliance checking can
// react to new records.
package store

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/provenance"
)

// Row is one row of the provenance table, mirroring Table 1 of the paper:
// a record ID, its class, the trace (application) ID, and the record
// content serialized as XML.
type Row struct {
	ID    string
	Class string
	AppID string
	XML   string
}

// EncodeNode serializes a node record into a Table-1 row. The XML shape
// follows the paper's examples: the root element is named after the record
// type with the ps: prefix and carries ps:id and ps:class attributes; the
// application ID and timestamp are system elements; every business
// attribute becomes an element named after the field, carrying a kind
// attribute so rows are self-describing on decode.
//
//	<ps:jobRequisition ps:id="PE3" ps:class="data">
//	  <ps:appID>App01</ps:appID>
//	  <ps:timestamp value="2011-04-11T09:30:00Z"/>
//	  <reqID kind="string">REQ001</reqID>
//	</ps:jobRequisition>
func EncodeNode(n *provenance.Node) (Row, error) {
	if err := n.Validate(); err != nil {
		return Row{}, err
	}
	var b strings.Builder
	openRecordElem(&b, n.Type, n.ID, n.Class.String(), "")
	writeSystemElems(&b, n.AppID, n.Timestamp)
	writeAttrElems(&b, n.Attrs)
	closeRecordElem(&b, n.Type)
	return Row{ID: n.ID, Class: n.Class.String(), AppID: n.AppID, XML: b.String()}, nil
}

// EncodeEdge serializes a relation record into a Table-1 row. Relations
// use the fixed root element ps:relation with a ps:type attribute and
// ps:source / ps:target system elements, as in the paper's PE4 example.
func EncodeEdge(e *provenance.Edge) (Row, error) {
	if err := e.Validate(); err != nil {
		return Row{}, err
	}
	var b strings.Builder
	openRecordElem(&b, "relation", e.ID, provenance.ClassRelation.String(), e.Type)
	writeSystemElems(&b, e.AppID, e.Timestamp)
	b.WriteString("<ps:source>")
	xmlEscape(&b, e.Source)
	b.WriteString("</ps:source><ps:target>")
	xmlEscape(&b, e.Target)
	b.WriteString("</ps:target>")
	writeAttrElems(&b, e.Attrs)
	closeRecordElem(&b, "relation")
	return Row{ID: e.ID, Class: provenance.ClassRelation.String(), AppID: e.AppID, XML: b.String()}, nil
}

func openRecordElem(b *strings.Builder, elem, id, class, relType string) {
	b.WriteString("<ps:")
	b.WriteString(elem)
	b.WriteString(` ps:id="`)
	xmlEscape(b, id)
	b.WriteString(`" ps:class="`)
	xmlEscape(b, class)
	b.WriteString(`"`)
	if relType != "" {
		b.WriteString(` ps:type="`)
		xmlEscape(b, relType)
		b.WriteString(`"`)
	}
	b.WriteString(">")
}

func closeRecordElem(b *strings.Builder, elem string) {
	b.WriteString("</ps:")
	b.WriteString(elem)
	b.WriteString(">")
}

func writeSystemElems(b *strings.Builder, appID string, ts time.Time) {
	b.WriteString("<ps:appID>")
	xmlEscape(b, appID)
	b.WriteString("</ps:appID>")
	if !ts.IsZero() {
		b.WriteString(`<ps:timestamp value="`)
		xmlEscape(b, provenance.Time(ts).Text())
		b.WriteString(`"/>`)
	}
}

func writeAttrElems(b *strings.Builder, attrs map[string]provenance.Value) {
	names := make([]string, 0, len(attrs))
	for name := range attrs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := attrs[name]
		if v.IsZero() {
			continue
		}
		b.WriteString("<")
		b.WriteString(name)
		b.WriteString(` kind="`)
		b.WriteString(v.Kind().String())
		b.WriteString(`">`)
		xmlEscape(b, v.Text())
		b.WriteString("</")
		b.WriteString(name)
		b.WriteString(">")
	}
}

func xmlEscape(b *strings.Builder, s string) {
	// xml.EscapeText never fails on a strings.Builder.
	_ = xml.EscapeText(b, []byte(s))
}

// DecodeRow parses a Table-1 row back into a node or edge record. Exactly
// one of the returned records is non-nil on success.
func DecodeRow(r Row) (*provenance.Node, *provenance.Edge, error) {
	dec := xml.NewDecoder(strings.NewReader(r.XML))
	root, err := nextStartElement(dec)
	if err != nil {
		return nil, nil, fmt.Errorf("store: row %s: %v", r.ID, err)
	}
	if root.Name.Space != "ps" {
		return nil, nil, fmt.Errorf("store: row %s: root element %q lacks ps prefix", r.ID, root.Name.Local)
	}
	id := xmlAttr(root, "ps", "id")
	className := xmlAttr(root, "ps", "class")
	class, err := provenance.ParseClass(className)
	if err != nil {
		return nil, nil, fmt.Errorf("store: row %s: %v", r.ID, err)
	}
	if id != r.ID {
		return nil, nil, fmt.Errorf("store: row %s: XML carries id %q", r.ID, id)
	}
	body, err := decodeBody(dec, root.Name)
	if err != nil {
		return nil, nil, fmt.Errorf("store: row %s: %v", r.ID, err)
	}
	if body.appID != r.AppID {
		return nil, nil, fmt.Errorf("store: row %s: XML carries appID %q, row says %q", r.ID, body.appID, r.AppID)
	}
	if class == provenance.ClassRelation {
		if root.Name.Local != "relation" {
			return nil, nil, fmt.Errorf("store: row %s: relation row with root %q", r.ID, root.Name.Local)
		}
		e := &provenance.Edge{
			ID: id, Type: xmlAttr(root, "ps", "type"), AppID: body.appID,
			Source: body.source, Target: body.target,
			Timestamp: body.ts, Attrs: body.attrs,
		}
		if err := e.Validate(); err != nil {
			return nil, nil, err
		}
		return nil, e, nil
	}
	n := &provenance.Node{
		ID: id, Class: class, Type: root.Name.Local, AppID: body.appID,
		Timestamp: body.ts, Attrs: body.attrs,
	}
	if err := n.Validate(); err != nil {
		return nil, nil, err
	}
	return n, nil, nil
}

type rowBody struct {
	appID  string
	source string
	target string
	ts     time.Time
	attrs  map[string]provenance.Value
}

func decodeBody(dec *xml.Decoder, rootName xml.Name) (rowBody, error) {
	var body rowBody
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return body, fmt.Errorf("unexpected EOF before </%s>", rootName.Local)
		}
		if err != nil {
			return body, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Space == "ps" {
				switch t.Name.Local {
				case "appID":
					s, err := elementText(dec, t.Name)
					if err != nil {
						return body, err
					}
					body.appID = s
				case "timestamp":
					v := xmlAttr(t, "", "value")
					if v != "" {
						tv, err := provenance.ParseValue(provenance.KindTime, v)
						if err != nil {
							return body, err
						}
						body.ts = tv.TimeVal()
					}
					if err := dec.Skip(); err != nil {
						return body, err
					}
				case "source":
					s, err := elementText(dec, t.Name)
					if err != nil {
						return body, err
					}
					body.source = s
				case "target":
					s, err := elementText(dec, t.Name)
					if err != nil {
						return body, err
					}
					body.target = s
				default:
					return body, fmt.Errorf("unknown system element ps:%s", t.Name.Local)
				}
				continue
			}
			// Business attribute element: name is the field, kind attr
			// gives the type.
			kindName := xmlAttr(t, "", "kind")
			kind, err := provenance.ParseKind(kindName)
			if err != nil {
				return body, fmt.Errorf("attribute %s: %v", t.Name.Local, err)
			}
			text, err := elementText(dec, t.Name)
			if err != nil {
				return body, err
			}
			v, err := provenance.ParseValue(kind, text)
			if err != nil {
				return body, fmt.Errorf("attribute %s: %v", t.Name.Local, err)
			}
			if body.attrs == nil {
				body.attrs = make(map[string]provenance.Value)
			}
			body.attrs[t.Name.Local] = v
		case xml.EndElement:
			if t.Name == rootName {
				return body, nil
			}
		}
	}
}

func nextStartElement(dec *xml.Decoder) (xml.StartElement, error) {
	for {
		tok, err := dec.Token()
		if err != nil {
			return xml.StartElement{}, err
		}
		if se, ok := tok.(xml.StartElement); ok {
			return se, nil
		}
	}
}

func elementText(dec *xml.Decoder, name xml.Name) (string, error) {
	var b strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", err
		}
		switch t := tok.(type) {
		case xml.CharData:
			b.Write(t)
		case xml.EndElement:
			if t.Name == name {
				return b.String(), nil
			}
			return "", fmt.Errorf("unexpected </%s> inside <%s>", t.Name.Local, name.Local)
		case xml.StartElement:
			return "", fmt.Errorf("unexpected <%s> inside <%s>", t.Name.Local, name.Local)
		}
	}
}

func xmlAttr(se xml.StartElement, space, local string) string {
	for _, a := range se.Attr {
		if a.Name.Space == space && a.Name.Local == local {
			return a.Value
		}
	}
	return ""
}
