package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/provenance"
)

// stressNodeID names the i-th node of writer w. Zero-padding keeps the
// store's sorted-by-ID node order equal to insertion order, so a reader
// can assert "exact prefix" by position.
func stressNodeID(w, i int) string { return fmt.Sprintf("w%d-n%05d", w, i) }

// TestSnapshotIsolationStress is the -race gate for the MVCC read path:
// writers commit through the group-commit pipeline while readers assert
// that every snapshot they observe is an acknowledged commit prefix —
// never a torn batch, never a lost acked write, never a version moving
// backwards.
//
// Invariants checked inside every read transaction, per trace:
//
//   - len(Nodes(app)) == TraceVersion(app): the node set and the version
//     counter were published atomically.
//   - the node IDs are exactly stressNodeID(w, 0..v-1): the snapshot is a
//     prefix of the writer's commit order, with no holes.
//   - TraceVersion(app) >= the writer's acked count read before the load:
//     a write acknowledged to its writer is visible to every later read
//     (publish-before-ack).
//   - versions never decrease across one reader's successive loads.
//   - Seq() == sum of all trace versions: the whole snapshot sits on one
//     commit boundary; traces are never mixed across boundaries.
func TestSnapshotIsolationStress(t *testing.T) {
	const (
		writers       = 4
		nodesPerTrace = 250
		readers       = 4
	)
	s, err := Open(Options{Dir: t.TempDir(), Model: testModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	apps := make([]string, writers)
	for w := range apps {
		apps[w] = fmt.Sprintf("A%d", w)
	}
	var acked [writers]atomic.Uint64

	var wwg sync.WaitGroup
	writersDone := make(chan struct{})
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for i := 0; i < nodesPerTrace; i++ {
				n := mkReq(stressNodeID(w, i), apps[w], fmt.Sprintf("REQ-%d-%d", w, i))
				if err := s.PutNode(n); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				acked[w].Add(1)
			}
		}(w)
	}

	// checkView asserts the full invariant set against one consistent
	// view; lastSeen carries the reader's version floor between views.
	checkView := func(lastSeen []uint64) error {
		var ackedBefore [writers]uint64
		for w := range ackedBefore {
			ackedBefore[w] = acked[w].Load()
		}
		return s.ReadTx(func(tx ReadTx) error {
			g := tx.Graph()
			var sum uint64
			for w := 0; w < writers; w++ {
				v := g.TraceVersion(apps[w])
				sum += v
				if v < ackedBefore[w] {
					return fmt.Errorf("trace %s: version %d < %d writes acked before the load", apps[w], v, ackedBefore[w])
				}
				if v < lastSeen[w] {
					return fmt.Errorf("trace %s: version went backwards %d -> %d", apps[w], lastSeen[w], v)
				}
				lastSeen[w] = v
				nodes := g.Nodes(provenance.NodeFilter{AppID: apps[w]})
				if uint64(len(nodes)) != v {
					return fmt.Errorf("trace %s: torn snapshot, %d nodes at version %d", apps[w], len(nodes), v)
				}
				for i, n := range nodes {
					if want := stressNodeID(w, i); n.ID != want {
						return fmt.Errorf("trace %s: position %d holds %s, want prefix node %s", apps[w], i, n.ID, want)
					}
				}
			}
			if tx.Seq() != sum {
				return fmt.Errorf("seq %d != sum of trace versions %d: snapshot off a commit boundary", tx.Seq(), sum)
			}
			return nil
		})
	}

	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			lastSeen := make([]uint64, writers)
			for {
				select {
				case <-writersDone:
					return
				default:
				}
				if err := checkView(lastSeen); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}

	wwg.Wait()
	close(writersDone)
	rwg.Wait()
	if t.Failed() {
		return
	}

	// Final state: every acked write present, on a commit boundary.
	if err := checkView(make([]uint64, writers)); err != nil {
		t.Fatalf("final view: %v", err)
	}
	st := s.Stats()
	if want := uint64(writers * nodesPerTrace); st.Seq != want {
		t.Fatalf("final seq = %d, want %d", st.Seq, want)
	}
	if !st.Snapshots.Enabled || st.Snapshots.Publishes == 0 || st.Snapshots.ReaderLoads == 0 {
		t.Fatalf("snapshot counters look dead: %+v", st.Snapshots)
	}
}

// TestCompactRunsAgainstParkedSnapshotReaders pins that a reader holding
// a snapshot — even one parked inside View indefinitely — blocks neither
// writers nor Compact. Pre-D7, View held the state read lock for fn's
// whole duration, so a parked reader wedged every writer and compaction.
func TestCompactRunsAgainstParkedSnapshotReaders(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), Model: testModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.PutNode(mkReq("req1", "A1", "R1")); err != nil {
		t.Fatal(err)
	}

	inside := make(chan struct{})
	release := make(chan struct{})
	readerDone := make(chan error, 1)
	go func() {
		readerDone <- s.View(func(g *provenance.Graph) error {
			close(inside)
			<-release
			// The parked snapshot still serves its point-in-time state
			// after the write and the compaction below.
			if g.Node("req1") == nil {
				return fmt.Errorf("parked snapshot lost req1")
			}
			if g.Node("req2") != nil {
				return fmt.Errorf("parked snapshot sees a write from after it was taken")
			}
			return nil
		})
	}()
	<-inside

	workDone := make(chan error, 1)
	go func() {
		if err := s.PutNode(mkReq("req2", "A2", "R2")); err != nil {
			workDone <- fmt.Errorf("write behind parked reader: %v", err)
			return
		}
		workDone <- s.Compact()
	}()
	select {
	case err := <-workDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("write+Compact blocked behind a parked snapshot reader")
	}

	close(release)
	if err := <-readerDone; err != nil {
		t.Fatal(err)
	}
	// Compaction preserved the state the parked reader coexisted with.
	if s.Node("req1") == nil || s.Node("req2") == nil {
		t.Fatal("records lost across compaction")
	}
}

// TestViewRetentionAfterWrites pins the D7 retention contract: the graph
// a View callback receives may be kept past the callback's return and
// keeps serving its point-in-time state while the store moves on.
func TestViewRetentionAfterWrites(t *testing.T) {
	s := memStore(t)
	if err := s.PutNode(mkReq("req1", "A1", "R1")); err != nil {
		t.Fatal(err)
	}

	var retained *provenance.Graph
	var retainedVer uint64
	if err := s.ViewTrace("A1", func(g *provenance.Graph, v uint64) error {
		retained, retainedVer = g, v
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !retained.Frozen() {
		t.Fatal("View handed out a non-frozen graph")
	}

	if err := s.PutNode(mkReq("req2", "A1", "R2")); err != nil {
		t.Fatal(err)
	}
	upd := mkReq("req1", "A1", "R1")
	upd.Attrs["positionType"] = provenance.String("replacement")
	if err := s.UpdateNode(upd); err != nil {
		t.Fatal(err)
	}

	if retained.Node("req2") != nil {
		t.Error("retained snapshot sees a later write")
	}
	if got := retained.Node("req1").Attr("positionType"); !got.Equal(provenance.String("new")) {
		t.Errorf("retained snapshot sees a later update: positionType = %v", got)
	}
	if v := retained.TraceVersion("A1"); v != retainedVer {
		t.Errorf("retained snapshot's trace version moved %d -> %d", retainedVer, v)
	}
	if v := s.TraceVersion("A1"); v != retainedVer+2 {
		t.Errorf("store trace version = %d, want %d", v, retainedVer+2)
	}
}

// TestSnapshotCounters is the table test for the MVCC observability
// counters surfaced through Stats: they move on the snapshot path and
// stay dead (with Enabled=false) under the DisableSnapshots ablation.
func TestSnapshotCounters(t *testing.T) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{
		{"snapshots", false},
		{"mutex-ablation", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(Options{Model: testModel(t), DisableSnapshots: tc.disable})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			// Write, read, write, read: the second write lands in a new
			// epoch (a snapshot of the trace's shard was consumed by the
			// read), so it must pay a copy-on-write shard clone.
			if err := s.PutNode(mkReq("req1", "A1", "R1")); err != nil {
				t.Fatal(err)
			}
			_ = s.Stats()
			if err := s.PutNode(mkReq("req2", "A1", "R2")); err != nil {
				t.Fatal(err)
			}
			ss := s.Stats().Snapshots

			if ss.Enabled == tc.disable {
				t.Fatalf("Enabled = %v with DisableSnapshots = %v", ss.Enabled, tc.disable)
			}
			if tc.disable {
				if ss.Publishes != 0 || ss.ReaderLoads != 0 || ss.CopiedShards != 0 || ss.CopiedNodes != 0 || ss.CopiedEdges != 0 {
					t.Fatalf("ablation counters moved: %+v", ss)
				}
				return
			}
			if ss.Publishes < 2 {
				t.Errorf("Publishes = %d, want >= 2 (open + post-write refresh)", ss.Publishes)
			}
			if ss.ReaderLoads < 2 {
				t.Errorf("ReaderLoads = %d, want >= 2 (two Stats reads)", ss.ReaderLoads)
			}
			if ss.CopiedShards < 1 || ss.CopiedNodes < 1 {
				t.Errorf("copy-on-write counters flat after cross-epoch write: %+v", ss)
			}
			// Reads move ReaderLoads but never the copy counters.
			before := ss
			_ = s.Stats()
			after := s.Stats().Snapshots
			if after.ReaderLoads <= before.ReaderLoads {
				t.Errorf("ReaderLoads did not advance on read: %d -> %d", before.ReaderLoads, after.ReaderLoads)
			}
			if after.CopiedShards != before.CopiedShards || after.CopiedNodes != before.CopiedNodes || after.CopiedEdges != before.CopiedEdges {
				t.Errorf("read-only traffic changed copy counters: %+v -> %+v", before, after)
			}
		})
	}
}
