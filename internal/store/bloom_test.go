package store

import (
	"fmt"
	"testing"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	b := newBloom(1000)
	for i := 0; i < 1000; i++ {
		b.add(fmt.Sprintf("trace-%04d", i))
	}
	for i := 0; i < 1000; i++ {
		if !b.mightContain(fmt.Sprintf("trace-%04d", i)) {
			t.Fatalf("false negative for trace-%04d", i)
		}
	}
	// At ~10 bits/key the false-positive rate should stay in the low
	// percent range; 20% would mean the hash mixing is broken.
	fp := 0
	for i := 0; i < 5000; i++ {
		if b.mightContain(fmt.Sprintf("absent-%04d", i)) {
			fp++
		}
	}
	if rate := float64(fp) / 5000; rate > 0.05 {
		t.Fatalf("false-positive rate %.3f too high", rate)
	}
	if est := b.estFPP(); est > 0.05 {
		t.Fatalf("estimated FPP %.3f too high", est)
	}
}

func TestBloomMarshalRoundTrip(t *testing.T) {
	b := newBloom(64)
	keys := []string{"", "a", "A", "app-1", "app-2", "日本語"}
	for _, k := range keys {
		b.add(k)
	}
	rb, err := unmarshalBloom(b.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if rb.m != b.m || rb.k != b.k {
		t.Fatalf("shape changed: %d/%d -> %d/%d", b.m, b.k, rb.m, rb.k)
	}
	for _, k := range keys {
		if !rb.mightContain(k) {
			t.Fatalf("false negative after round trip: %q", k)
		}
	}
	if _, err := unmarshalBloom([]byte{1, 2, 3}); err == nil {
		t.Fatal("short marshal accepted")
	}
	if _, err := unmarshalBloom(make([]byte, 12)); err == nil {
		t.Fatal("invalid word alignment accepted")
	}
}

// FuzzBloomNoFalseNegatives is the satellite fuzz target: whatever key
// goes in must still test positive, before and after a marshal round
// trip. Bloom filters may lie "yes", never "no" — a false negative would
// make a sealed trace silently unreadable.
func FuzzBloomNoFalseNegatives(f *testing.F) {
	f.Add("app-1", "other")
	f.Add("", "x")
	f.Add("日本語-trace", "日本語-trac")
	f.Fuzz(func(t *testing.T, key, probe string) {
		b := newBloom(4)
		b.add(key)
		if !b.mightContain(key) {
			t.Fatalf("false negative for %q", key)
		}
		rb, err := unmarshalBloom(b.marshal())
		if err != nil {
			t.Fatal(err)
		}
		if !rb.mightContain(key) {
			t.Fatalf("false negative after round trip for %q", key)
		}
		// probe exercises mightContain on arbitrary input; any answer is
		// legal, it just must not panic.
		_ = rb.mightContain(probe)
	})
}
