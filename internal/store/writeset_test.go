package store

import (
	"fmt"
	"testing"

	"repro/internal/provenance"
)

func wsNodeEvent(kind EventKind, version uint64, id string) Event {
	return Event{Kind: kind, TraceVersion: version,
		Node: &provenance.Node{ID: id, Type: "t", AppID: "A"}}
}

func wsEdgeEvent(version uint64, id string) Event {
	return Event{Kind: EventEdge, TraceVersion: version,
		Edge: &provenance.Edge{ID: id, Type: "rel", AppID: "A"}}
}

func TestWriteSetAddEventTracksInterval(t *testing.T) {
	ws := NewWriteSet()
	if ws.Full() || ws.Base() != 0 || ws.Max() != 0 || ws.Len() != 0 {
		t.Fatalf("fresh set = full=%v [%d,%d] len=%d", ws.Full(), ws.Base(), ws.Max(), ws.Len())
	}
	ws.AddEvent(wsNodeEvent(EventNode, 5, "n1"))
	if ws.Base() != 4 || ws.Max() != 5 {
		t.Fatalf("after first event interval = (%d,%d], want (4,5]", ws.Base(), ws.Max())
	}
	ws.AddEvent(wsEdgeEvent(6, "e1"))
	ws.AddEvent(wsNodeEvent(EventNodeUpdate, 7, "n1"))
	if ws.Base() != 4 || ws.Max() != 7 {
		t.Fatalf("interval = (%d,%d], want (4,7]", ws.Base(), ws.Max())
	}
	if ws.Full() {
		t.Fatal("contiguous adds degraded to full")
	}
	if len(ws.Nodes) != 2 || len(ws.Edges) != 1 || ws.Len() != 3 {
		t.Fatalf("records = %d nodes, %d edges", len(ws.Nodes), len(ws.Edges))
	}
}

func TestWriteSetZeroVersionDegrades(t *testing.T) {
	ws := NewWriteSet()
	ws.AddEvent(wsNodeEvent(EventNode, 0, "n1"))
	if !ws.Full() {
		t.Fatal("event without a trace version must degrade the set to full")
	}
	if ws.Len() != 0 {
		t.Fatal("full set retains records")
	}
	// Once full, further adds stay full and retain nothing.
	ws.AddEvent(wsNodeEvent(EventNode, 9, "n2"))
	if !ws.Full() || ws.Len() != 0 {
		t.Fatal("full set resurrected by a later event")
	}
}

func TestWriteSetCapOverflowDegrades(t *testing.T) {
	ws := NewWriteSet()
	for i := 0; i < writeSetCap; i++ {
		ws.AddEvent(wsNodeEvent(EventNode, uint64(i+1), fmt.Sprintf("n%d", i)))
	}
	if ws.Full() {
		t.Fatalf("set full at exactly %d records", writeSetCap)
	}
	ws.AddEvent(wsNodeEvent(EventNode, uint64(writeSetCap+1), "over"))
	if !ws.Full() || ws.Len() != 0 {
		t.Fatal("overflowing the record cap must degrade to full and drop records")
	}
	// The interval is still tracked: a full set's coverage claim survives.
	if ws.Base() != 0 || ws.Max() != uint64(writeSetCap+1) {
		t.Fatalf("interval = (%d,%d]", ws.Base(), ws.Max())
	}
}

func TestWriteSetMergeContiguous(t *testing.T) {
	a := NewWriteSet()
	a.AddEvent(wsNodeEvent(EventNode, 3, "n1"))
	a.AddEvent(wsNodeEvent(EventNode, 4, "n2"))
	b := NewWriteSet()
	b.AddEvent(wsEdgeEvent(5, "e1"))

	a.Merge(b)
	if a.Full() {
		t.Fatal("contiguous merge degraded to full")
	}
	if a.Base() != 2 || a.Max() != 5 {
		t.Fatalf("merged interval = (%d,%d], want (2,5]", a.Base(), a.Max())
	}
	if len(a.Nodes) != 2 || len(a.Edges) != 1 {
		t.Fatalf("merged records = %d nodes, %d edges", len(a.Nodes), len(a.Edges))
	}

	// Overlapping intervals merge fine too (o.base <= ws.max).
	c := NewWriteSet()
	c.AddEvent(wsNodeEvent(EventNodeUpdate, 5, "n1"))
	c.AddEvent(wsNodeEvent(EventNode, 6, "n3"))
	a.Merge(c)
	if a.Full() || a.Base() != 2 || a.Max() != 6 {
		t.Fatalf("overlap merge = full=%v (%d,%d]", a.Full(), a.Base(), a.Max())
	}
}

func TestWriteSetMergeGapDegrades(t *testing.T) {
	a := NewWriteSet()
	a.AddEvent(wsNodeEvent(EventNode, 3, "n1"))
	b := NewWriteSet()
	b.AddEvent(wsNodeEvent(EventNode, 7, "n2")) // base 6 > a.max 3: gap

	a.Merge(b)
	if !a.Full() {
		t.Fatal("merging across a version gap must degrade to full")
	}
	if a.Max() != 7 {
		t.Fatalf("merged max = %d, want 7", a.Max())
	}
}

func TestWriteSetMergeNilAndFull(t *testing.T) {
	a := NewWriteSet()
	a.AddEvent(wsNodeEvent(EventNode, 3, "n1"))
	a.Merge(nil)
	if !a.Full() || a.Len() != 0 {
		t.Fatal("merging nil must degrade to full")
	}

	b := NewWriteSet()
	b.AddEvent(wsNodeEvent(EventNode, 3, "n1"))
	b.Merge(FullWriteSet())
	if !b.Full() || b.Len() != 0 {
		t.Fatal("merging a full set must degrade to full")
	}
}

// TestWriteSetFromFeed checks the end-to-end contract the continuous
// checker relies on: folding a trace's real change-feed events in
// delivery order yields a contiguous interval ending at the trace's
// current version, with pre-images attached to updates.
func TestWriteSetFromFeed(t *testing.T) {
	m := provenance.NewModel("m")
	if err := m.AddType(&provenance.TypeDef{Name: "doc", Class: provenance.ClassData}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddField("doc", &provenance.FieldDef{Name: "state", Kind: provenance.KindString}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	sub := st.Subscribe()
	defer sub.Cancel()

	put := func(id, state string, update bool) {
		t.Helper()
		n := &provenance.Node{ID: id, Type: "doc", Class: provenance.ClassData, AppID: "A",
			Attrs: map[string]provenance.Value{"state": provenance.String(state)}}
		op := st.PutNode
		if update {
			op = st.UpdateNode
		}
		if err := op(n); err != nil {
			t.Fatal(err)
		}
	}
	put("d1", "draft", false)
	put("d2", "draft", false)
	put("d1", "final", true) // update: feed carries the pre-image

	ws := NewWriteSet()
	for i := 0; i < 3; i++ {
		ws.AddEvent(<-sub.C())
	}
	if ws.Full() {
		t.Fatal("feed-fed set degraded to full")
	}
	if ws.Base() != 0 || ws.Max() != st.TraceVersion("A") {
		t.Fatalf("interval = (%d,%d], trace at %d", ws.Base(), ws.Max(), st.TraceVersion("A"))
	}
	if len(ws.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(ws.Nodes))
	}
	up := ws.Nodes[2]
	if up.Kind != EventNodeUpdate || up.Prev == nil {
		t.Fatalf("update write = kind %v prev %v", up.Kind, up.Prev)
	}
	if up.Prev.Attr("state").Str() != "draft" || up.Node.Attr("state").Str() != "final" {
		t.Fatalf("pre/post images = %q -> %q", up.Prev.Attr("state").Str(), up.Node.Attr("state").Str())
	}
}
