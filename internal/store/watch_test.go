package store

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/provenance"
)

func TestSubscriptionReceivesCommitsInOrder(t *testing.T) {
	s := memStore(t)
	sub := s.Subscribe()
	defer sub.Cancel()

	if err := s.PutNode(mkReq("r1", "A", "REQ1")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutNode(mkPerson("p1", "A", "Joe")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutEdge(mkSubmitter("e1", "A", "p1", "r1")); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdateNode(mkReq("r1", "A", "REQ1-v2")); err != nil {
		t.Fatal(err)
	}

	want := []struct {
		kind EventKind
		id   string
	}{
		{EventNode, "r1"},
		{EventNode, "p1"},
		{EventEdge, "e1"},
		{EventNodeUpdate, "r1"},
	}
	for i, w := range want {
		select {
		case ev := <-sub.C():
			if ev.Kind != w.kind {
				t.Fatalf("event %d kind = %v, want %v", i, ev.Kind, w.kind)
			}
			id := ""
			if ev.Node != nil {
				id = ev.Node.ID
			} else if ev.Edge != nil {
				id = ev.Edge.ID
			}
			if id != w.id {
				t.Fatalf("event %d id = %q, want %q", i, id, w.id)
			}
			if ev.AppID() != "A" {
				t.Fatalf("event %d app = %q", i, ev.AppID())
			}
			if ev.Seq != uint64(i+1) {
				t.Fatalf("event %d seq = %d", i, ev.Seq)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out waiting for event %d", i)
		}
	}
}

func TestSubscriptionEventsAreClones(t *testing.T) {
	s := memStore(t)
	sub := s.Subscribe()
	defer sub.Cancel()
	if err := s.PutNode(mkReq("r1", "A", "REQ1")); err != nil {
		t.Fatal(err)
	}
	ev := <-sub.C()
	ev.Node.SetAttr("reqID", provenance.String("TAMPERED"))
	if s.Node("r1").Attr("reqID").Str() != "REQ1" {
		t.Error("mutating an event payload changed store state")
	}
}

func TestSubscriptionCancelClosesChannel(t *testing.T) {
	s := memStore(t)
	sub := s.Subscribe()
	if err := s.PutNode(mkReq("r1", "A", "REQ1")); err != nil {
		t.Fatal(err)
	}
	sub.Cancel()
	// Drain: the pending event is still delivered, then the channel closes.
	var got int
	for range sub.C() {
		got++
	}
	if got != 1 {
		t.Fatalf("drained %d events, want 1", got)
	}
	// Events after cancel are not delivered anywhere (no panic, no leak).
	if err := s.PutNode(mkReq("r2", "A", "REQ2")); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCloseClosesSubscriptions(t *testing.T) {
	s, err := Open(Options{Model: testModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	sub := s.Subscribe()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-sub.C():
		if ok {
			t.Fatal("unexpected event")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("channel not closed on store close")
	}
}

func TestSlowSubscriberDoesNotBlockWriters(t *testing.T) {
	s := memStore(t)
	sub := s.Subscribe() // never read until the end
	const n = 5000
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := s.PutNode(mkReq(fmt.Sprintf("r%d", i), "A", "REQ")); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("writer blocked by slow subscriber")
	}
	// Every event is still there, in order.
	sub.Cancel()
	var count int
	var lastSeq uint64
	for ev := range sub.C() {
		if ev.Seq <= lastSeq {
			t.Fatalf("out of order: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		count++
	}
	if count != n {
		t.Fatalf("received %d events, want %d", count, n)
	}
}

func TestMultipleSubscribersAllReceive(t *testing.T) {
	s := memStore(t)
	subs := []*Subscription{s.Subscribe(), s.Subscribe(), s.Subscribe()}
	if err := s.PutNode(mkReq("r1", "A", "REQ1")); err != nil {
		t.Fatal(err)
	}
	for i, sub := range subs {
		select {
		case ev := <-sub.C():
			if ev.Node == nil || ev.Node.ID != "r1" {
				t.Fatalf("subscriber %d got %+v", i, ev)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("subscriber %d timed out", i)
		}
		sub.Cancel()
	}
}
