package store

import (
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/provenance"
)

// Shard handoff: moving a set of traces from one provd node to another.
// The wire format is the sealed-segment codec (PROVSEG1) — the same
// CRC-framed, footer-indexed file compaction writes — so the receiving
// node validates structure, checksums and decodability before a single
// row enters its store, and the shipped file doubles as a audit artifact.
//
// The protocol is two-phase and idempotent:
//
//  1. bulk: the source streams ExportTraces while writes still flow;
//     the target replays it through ImportSegment, which skips records
//     it already holds (record IDs are write-once and globally unique).
//  2. cutover: the router sheds writes for the moving traces, the
//     source streams a tail export (same call — the import dedups the
//     overlap), the ring swaps, and the source commits DropTraces
//     tombstones so the moved traces cannot resurrect from its log or
//     its sealed segments.

// ExportStats summarizes one handoff export.
type ExportStats struct {
	Traces int    `json:"traces"`
	Rows   int    `json:"rows"`
	Seq    uint64 `json:"seq"`
}

// exportTraceRows assembles one trace's segTraceRows from either tier.
// Returns ok=false when the trace exists in neither.
func (s *Store) exportTraceRows(app string) (segTraceRows, bool, error) {
	var rows []entry
	var ver, last uint64
	found := false
	s.readTx(func(tx ReadTx) error {
		if v := tx.g.TraceVersion(app); v != 0 {
			found = true
			ver = v
			last = tx.seq
			var nodes, edges []entry
			for _, r := range tx.rows.forApp(app) {
				if r.Class == provenance.ClassRelation.String() {
					edges = append(edges, entry{op: opPutEdge, row: r})
				} else {
					nodes = append(nodes, entry{op: opPutNode, row: r})
				}
			}
			sort.Slice(nodes, func(i, j int) bool { return nodes[i].row.ID < nodes[j].row.ID })
			sort.Slice(edges, func(i, j int) bool { return edges[i].row.ID < edges[j].row.ID })
			rows = append(nodes, edges...)
		}
		return nil
	})
	if found {
		s.mu.RLock()
		if lt, ok := s.lastTouch[app]; ok {
			last = lt
		}
		s.mu.RUnlock()
	} else if s.tier != nil {
		seg, tr, ok := s.tier.lookupTrace(app, 0)
		if !ok {
			return segTraceRows{}, false, nil
		}
		var err error
		if rows, err = s.tier.traceRows(seg, tr); err != nil {
			return segTraceRows{}, false, fmt.Errorf("store: export %s: %v", app, err)
		}
		ver, last = tr.Ver, tr.Last
		found = true
	}
	if !found {
		return segTraceRows{}, false, nil
	}
	nodes, edges, err := decodeTrace(rows)
	if err != nil {
		return segTraceRows{}, false, fmt.Errorf("store: export %s: %v", app, err)
	}
	classSeen, typeSeen := map[string]bool{}, map[string]bool{}
	for _, e := range rows {
		classSeen[e.row.Class] = true
	}
	for _, n := range nodes {
		typeSeen[n.Type] = true
	}
	for _, ed := range edges {
		typeSeen[ed.Type] = true
	}
	tr := segTraceRows{app: app, ver: ver, last: last, rows: rows}
	for c := range classSeen {
		tr.classes = append(tr.classes, c)
	}
	for t := range typeSeen {
		tr.types = append(tr.types, t)
	}
	return tr, true, nil
}

// ExportTraces writes the named traces to w in the sealed-segment wire
// format, reading each from whichever tier currently holds it. Traces
// held by neither tier are silently skipped (the caller's trace list may
// be stale); the returned stats say what actually shipped. Writes to the
// exported traces may continue during the export — the handoff protocol
// re-exports the tail after shedding, and the importer dedups by record
// ID, so nothing is lost or doubled.
func (s *Store) ExportTraces(w io.Writer, apps []string) (ExportStats, error) {
	var st ExportStats
	demote := make([]segTraceRows, 0, len(apps))
	seen := map[string]bool{}
	for _, app := range apps {
		if app == "" || seen[app] {
			continue
		}
		seen[app] = true
		tr, ok, err := s.exportTraceRows(app)
		if err != nil {
			return st, err
		}
		if !ok {
			continue
		}
		st.Traces++
		st.Rows += len(tr.rows)
		demote = append(demote, tr)
	}
	s.readTx(func(tx ReadTx) error { st.Seq = tx.seq; return nil })
	if len(demote) == 0 {
		// An empty segment is unrepresentable (no blocks); signal with a
		// zero-byte stream, which ImportSegment accepts as "nothing".
		return st, nil
	}
	f, err := os.CreateTemp("", "provhandoff-*.seg")
	if err != nil {
		return st, fmt.Errorf("store: export: %v", err)
	}
	path := f.Name()
	f.Close()
	defer os.Remove(path)
	if _, err := writeSegment(OSFS{}, path, st.Seq, demote, s.opts.SegmentBlockBytes); err != nil {
		return st, fmt.Errorf("store: export: %v", err)
	}
	src, err := os.Open(path)
	if err != nil {
		return st, fmt.Errorf("store: export: %v", err)
	}
	defer src.Close()
	if _, err := io.Copy(w, src); err != nil {
		return st, fmt.Errorf("store: export: %v", err)
	}
	return st, nil
}

// ImportSegment replays an ExportTraces stream through the normal
// validated write path. The stream is staged to a temp file and opened
// with the segment reader first, so checksums, framing and the footer
// are verified before any row is applied. Records already present (same
// ID, either tier) are skipped — re-delivery and bulk/tail overlap are
// harmless. Returns (inserted, skipped).
func (s *Store) ImportSegment(r io.Reader) (inserted, skipped int, err error) {
	f, err := os.CreateTemp("", "provhandoff-*.seg")
	if err != nil {
		return 0, 0, fmt.Errorf("store: import: %v", err)
	}
	path := f.Name()
	defer os.Remove(path)
	n, err := io.Copy(f, r)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, 0, fmt.Errorf("store: import: staging: %v", err)
	}
	if n == 0 {
		return 0, 0, nil // empty export: nothing to move
	}
	seg, err := openSegment(OSFS{}, path, 0)
	if err != nil {
		return 0, 0, fmt.Errorf("store: import: invalid segment stream: %v", err)
	}
	ft, err := seg.readFooter()
	if err != nil {
		return 0, 0, fmt.Errorf("store: import: %v", err)
	}
	for blk := 0; blk < len(ft.Blocks); blk++ {
		rows, err := seg.readBlock(ft, blk)
		if err != nil {
			return inserted, skipped, fmt.Errorf("store: import: block %d: %v", blk, err)
		}
		nodes, edges, err := decodeTrace(rows)
		if err != nil {
			return inserted, skipped, fmt.Errorf("store: import: %v", err)
		}
		for _, nd := range nodes {
			if s.Node(nd.ID) != nil {
				skipped++
				continue
			}
			if err := s.PutNode(nd); err != nil {
				return inserted, skipped, fmt.Errorf("store: import %s: %v", nd.ID, err)
			}
			inserted++
		}
		for _, ed := range edges {
			if s.Edge(ed.ID) != nil {
				skipped++
				continue
			}
			if err := s.PutEdge(ed); err != nil {
				return inserted, skipped, fmt.Errorf("store: import %s: %v", ed.ID, err)
			}
			inserted++
		}
	}
	return inserted, skipped, nil
}

// DropTraces removes the named traces from this node after a handoff:
// one opTraceDrop tombstone per trace commits through the normal log
// path (so replay removes instead of resurrecting), then the sealed
// copies are scrubbed out of their segments. The tombstones disappear at
// the next compaction, whose rewrite is built from the already-dropped
// state. Traces not present are tombstoned anyway — the caller's view
// and ours may disagree, and a tombstone for an absent trace is inert.
func (s *Store) DropTraces(apps ...string) error {
	if len(apps) == 0 {
		return nil
	}
	// compactMu serializes against sealing: no segment can be written
	// between the tombstone commit and the scrub below, so "sealed at or
	// before the drop sequence" cleanly separates dead copies from any
	// future re-import.
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	var seqNow uint64
	s.readTx(func(tx ReadTx) error { seqNow = tx.seq; return nil })
	for _, app := range apps {
		if app == "" {
			continue
		}
		if err := s.commit(entry{op: opTraceDrop, row: Row{AppID: app}, gen: seqNow}); err != nil {
			return fmt.Errorf("store: drop %s: %v", app, err)
		}
	}
	if s.tier != nil {
		if err := s.scrubDroppedLocked(); err != nil {
			// The tombstones are durable and the in-memory dropped map
			// still guards lookups; the scrub retries at next Open.
			return fmt.Errorf("store: drop: scrub: %v", err)
		}
	}
	return nil
}
