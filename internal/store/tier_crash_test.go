package store_test

// Crash-recovery sweep for the tiered-storage layer: a script that seeds
// three traces, demotes two, promotes one back by writing to it, and
// demotes again, run on the fault-injection filesystem that kills the
// machine at the Nth mutating filesystem operation. For every N the
// recovered store must present every acknowledged record — from the hot
// tier, a sealed segment, or the log, whichever survived — with exact
// trace versions (the script has no update chains, so versions never
// collapse), and stay writable.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/store/faultfs"
)

var tierCrashApps = []string{"A0", "A1", "A2"}

// tierScript returns the workload; demote steps do not change the
// observable state, so only mutating steps advance the model.
func tierCrashScript() []scriptOp {
	var ops []scriptOp
	put := func(id, app, reqID string) {
		ops = append(ops, scriptOp{mutating: true, do: func(s *store.Store) error {
			return s.PutNode(crashReq(id, app, reqID))
		}})
	}
	demote := func(apps ...string) {
		ops = append(ops, scriptOp{do: func(s *store.Store) error {
			return s.DemoteTraces(apps...)
		}})
	}
	for i := 0; i < 9; i++ {
		put(fmt.Sprintf("n%d", i), tierCrashApps[i%3], fmt.Sprintf("REQ%d", i))
	}
	demote("A0", "A1")
	put("n9", "A0", "REQ9") // promotes A0 out of its fresh segment
	put("n10", "A2", "REQ10")
	demote("A0", "A2") // A0's second seal supersedes its first
	put("n11", "A1", "REQ11")
	return ops
}

// tierFingerprint captures per-trace versions and rows through the
// tier-transparent read paths (ExportRows sees only the hot tier).
func tierFingerprint(t testing.TB, s *store.Store) string {
	t.Helper()
	var b strings.Builder
	for _, app := range tierCrashApps {
		fmt.Fprintf(&b, "%s v%d:", app, s.TraceVersion(app))
		rows := s.RowsForApp(app)
		ids := make([]string, 0, len(rows))
		for _, r := range rows {
			ids = append(ids, r.ID)
		}
		sort.Strings(ids)
		fmt.Fprintf(&b, " %s\n", strings.Join(ids, ","))
	}
	return b.String()
}

func TestTierCrashRecovery(t *testing.T) {
	ops := tierCrashScript()

	// Model: the expected fingerprint after every mutating prefix, from
	// in-memory stores (demotion changes placement, never content).
	var mutating []scriptOp
	for _, op := range ops {
		if op.mutating {
			mutating = append(mutating, op)
		}
	}
	var model []string
	for k := 0; k <= len(mutating); k++ {
		m, err := store.Open(store.Options{Model: crashModel(t)})
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range mutating[:k] {
			if err := op.do(m); err != nil {
				t.Fatal(err)
			}
		}
		model = append(model, tierFingerprint(t, m))
		m.Close()
	}

	// Count fault points on a clean run.
	probe := faultfs.New(nil)
	{
		dir := t.TempDir()
		s, err := store.Open(store.Options{Dir: dir, Model: crashModel(t), Sync: true, FS: probe})
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			if err := op.do(s); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// Sanity: the clean run really did tier — two segments survive
		// (A0's first seal is superseded but still present).
		s2, err := store.Open(store.Options{Dir: dir, Model: crashModel(t)})
		if err != nil {
			t.Fatal(err)
		}
		if ti := s2.Tiering(); ti.Segments < 2 || ti.SealedTraces < 3 {
			t.Fatalf("clean run sealed too little: %+v", ti)
		}
		if got := tierFingerprint(t, s2); got != model[len(mutating)] {
			t.Fatalf("clean run diverged from model:\n%s\nwant:\n%s", got, model[len(mutating)])
		}
		s2.Close()
	}
	points := probe.Ops()
	if points < 40 {
		t.Fatalf("suspiciously few fault points: %d", points)
	}
	stride := 1
	if testing.Short() {
		stride = 7
	}

	for point := 1; point <= points; point += stride {
		point := point
		t.Run(fmt.Sprintf("crash-at-%d", point), func(t *testing.T) {
			dir := t.TempDir()
			ffs := faultfs.New(faultfs.CrashAt(point))
			committed := 0
			s, err := store.Open(store.Options{Dir: dir, Model: crashModel(t), Sync: true, FS: ffs})
			if err == nil {
				for _, op := range ops {
					if err := op.do(s); err != nil {
						break
					}
					if op.mutating {
						committed++
					}
				}
				s.Close() // post-crash close errors are expected; ignore
			}

			s2, err := store.Open(store.Options{Dir: dir, Model: crashModel(t), Sync: true})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer s2.Close()
			got := tierFingerprint(t, s2)
			matched := -1
			for k := committed; k <= committed+1 && k < len(model); k++ {
				if got == model[k] {
					matched = k
					break
				}
			}
			if matched < 0 {
				t.Fatalf("recovered state matches no allowed prefix (committed=%d):\n%s", committed, got)
			}

			// Writable, with exact version accounting, across all traces
			// whatever tier they recovered into.
			for _, app := range tierCrashApps {
				before := s2.TraceVersion(app)
				if err := s2.PutNode(crashReq("fresh-"+app, app, "REQ-fresh")); err != nil {
					t.Fatalf("post-recovery write to %s failed: %v", app, err)
				}
				if gotV := s2.TraceVersion(app); gotV != before+1 {
					t.Fatalf("version of %s after write = %d, want %d", app, gotV, before+1)
				}
			}
			want2 := tierFingerprint(t, s2)
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			s3, err := store.Open(store.Options{Dir: dir, Model: crashModel(t)})
			if err != nil {
				t.Fatalf("second recovery failed: %v", err)
			}
			defer s3.Close()
			if got3 := tierFingerprint(t, s3); got3 != want2 {
				t.Fatalf("close/reopen diverged:\nfirst:\n%s\nsecond:\n%s", want2, got3)
			}
		})
	}
}
