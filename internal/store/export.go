package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/provenance"
)

// ExportRows streams the current row table as JSON lines — one Table-1 row
// per line, nodes before edges, each group sorted by ID. The format is a
// portable backup: ImportRows on an empty store reproduces the state, and
// external tooling can consume it line by line.
func (s *Store) ExportRows(w io.Writer) error {
	var nodeRows, edgeRows []Row
	s.readTx(func(tx ReadTx) error {
		nodeRows = make([]Row, 0, tx.rows.count)
		tx.rows.each(func(r Row) {
			if r.Class == provenance.ClassRelation.String() {
				edgeRows = append(edgeRows, r)
			} else {
				nodeRows = append(nodeRows, r)
			}
		})
		return nil
	})
	sort.Slice(nodeRows, func(i, j int) bool { return nodeRows[i].ID < nodeRows[j].ID })
	sort.Slice(edgeRows, func(i, j int) bool { return edgeRows[i].ID < edgeRows[j].ID })

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, group := range [][]Row{nodeRows, edgeRows} {
		for _, r := range group {
			if err := enc.Encode(r); err != nil {
				return fmt.Errorf("store: export: %v", err)
			}
		}
	}
	return bw.Flush()
}

// ImportRows reads an ExportRows stream and inserts every record through
// the normal validated write path. Records already present (same ID) are
// skipped and counted; any other failure aborts. It returns (inserted,
// skipped).
func (s *Store) ImportRows(r io.Reader) (inserted, skipped int, err error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var deferred []*provenance.Edge
	for {
		var row Row
		if err := dec.Decode(&row); err == io.EOF {
			break
		} else if err != nil {
			return inserted, skipped, fmt.Errorf("store: import: %v", err)
		}
		n, e, err := DecodeRow(row)
		if err != nil {
			return inserted, skipped, fmt.Errorf("store: import: %v", err)
		}
		if n != nil {
			if s.Node(n.ID) != nil {
				skipped++
				continue
			}
			if err := s.PutNode(n); err != nil {
				return inserted, skipped, fmt.Errorf("store: import %s: %v", n.ID, err)
			}
			inserted++
			continue
		}
		if s.Edge(e.ID) != nil {
			skipped++
			continue
		}
		// Edges may reference nodes later in a hand-edited stream; defer
		// those whose endpoints are not present yet.
		if s.Node(e.Source) == nil || s.Node(e.Target) == nil {
			deferred = append(deferred, e)
			continue
		}
		if err := s.PutEdge(e); err != nil {
			return inserted, skipped, fmt.Errorf("store: import %s: %v", e.ID, err)
		}
		inserted++
	}
	for _, e := range deferred {
		if err := s.PutEdge(e); err != nil {
			return inserted, skipped, fmt.Errorf("store: import deferred %s: %v", e.ID, err)
		}
		inserted++
	}
	return inserted, skipped, nil
}
