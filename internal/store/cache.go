package store

import (
	"container/list"
	"sync"
)

// blockCache is the byte-capped LRU fronting sealed-segment reads. It
// holds three kinds of values, distinguished by the key's blk field:
//
//	blk >= 0           decoded data block ([]entry)
//	blk == cacheFooter parsed footer (*segFooter)
//	blk == cacheTrace  materialized read-only trace graph
//
// Capacity is in estimated bytes, not entries, so one huge block cannot
// masquerade as one cheap slot. Counters feed TieringStats.
type blockCache struct {
	mu  sync.Mutex
	cap int64
	cur int64
	lru *list.List // front = most recent; values are *cacheEnt
	ent map[cacheKey]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

const (
	cacheFooter = -1
	cacheTrace  = -2
)

type cacheKey struct {
	seg uint64
	blk int
	app string // "" for blocks and footers
}

type cacheEnt struct {
	key  cacheKey
	val  any
	size int64
}

// defaultCacheBytes is the block cache's default capacity.
const defaultCacheBytes = 32 << 20

func newBlockCache(capBytes int64) *blockCache {
	if capBytes <= 0 {
		capBytes = defaultCacheBytes
	}
	return &blockCache{cap: capBytes, lru: list.New(), ent: make(map[cacheKey]*list.Element)}
}

// get returns the cached value for key, promoting it to most-recent.
func (c *blockCache) get(key cacheKey) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.ent[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEnt).val, true
}

// put inserts (or replaces) key, evicting from the cold end until the
// byte budget holds. A value bigger than the whole cache is stored alone:
// callers get the caching they asked for and the next insert evicts it.
func (c *blockCache) put(key cacheKey, val any, size int64) {
	if size < 1 {
		size = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.ent[key]; ok {
		ce := el.Value.(*cacheEnt)
		c.cur += size - ce.size
		ce.val, ce.size = val, size
		c.lru.MoveToFront(el)
	} else {
		c.ent[key] = c.lru.PushFront(&cacheEnt{key: key, val: val, size: size})
		c.cur += size
	}
	for c.cur > c.cap && c.lru.Len() > 1 {
		back := c.lru.Back()
		ce := back.Value.(*cacheEnt)
		c.lru.Remove(back)
		delete(c.ent, ce.key)
		c.cur -= ce.size
		c.evictions++
	}
}

// dropSegment invalidates every entry belonging to segment id (used when
// a segment file is retired).
func (c *blockCache) dropSegment(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		ce := el.Value.(*cacheEnt)
		if ce.key.seg == id {
			c.lru.Remove(el)
			delete(c.ent, ce.key)
			c.cur -= ce.size
		}
		el = next
	}
}

// CacheStats is the block cache's observable state.
type CacheStats struct {
	CapBytes  int64  `json:"cap_bytes"`
	UsedBytes int64  `json:"used_bytes"`
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

func (c *blockCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		CapBytes: c.cap, UsedBytes: c.cur, Entries: c.lru.Len(),
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}

// entriesSize estimates the resident bytes of a decoded block.
func entriesSize(es []entry) int64 {
	sz := int64(len(es)) * 64
	for _, e := range es {
		sz += int64(len(e.row.ID) + len(e.row.Class) + len(e.row.AppID) + len(e.row.XML))
	}
	return sz
}

// footerSize estimates the resident bytes of a parsed footer.
func footerSize(ft *segFooter) int64 {
	sz := int64(256 + len(ft.Blocks)*16)
	for _, tr := range ft.Traces {
		sz += int64(64 + len(tr.App))
	}
	sz += int64(len(ft.BloomTrace) + len(ft.BloomClass) + len(ft.BloomType))
	return sz
}
