// Package faultfs is a fault-injection implementation of store.FS for
// crash-recovery and error-path testing. It passes operations through to
// the real filesystem until an injected fault fires: a one-shot error, a
// short (torn) write, or a crash — after which every subsequent operation
// fails, so the files on disk freeze in exactly the state a process kill
// at that point would have left them. Reopening the directory with the
// real filesystem then exercises recovery against that state.
package faultfs

import (
	"errors"
	"os"
	"sync"

	"repro/internal/store"
)

// Kind classifies the filesystem operations faults can target.
type Kind int

const (
	OpWrite Kind = iota + 1
	OpSync
	OpSyncDir
	OpRename
	OpRemove
	OpTruncate
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpSyncDir:
		return "syncdir"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	default:
		return "invalid"
	}
}

// Op describes one mutating filesystem operation about to execute.
type Op struct {
	Kind Kind
	Path string
	// N is the 1-based index of this operation among all mutating
	// operations the FS has seen.
	N int
}

// Fault is the injection decision for one operation.
type Fault int

const (
	// None lets the operation through.
	None Fault = iota
	// Err fails this operation with ErrInjected; later operations
	// proceed normally (a transient I/O error).
	Err
	// Crash fails this and every subsequent operation with ErrCrashed.
	// A crashing write persists only a prefix of its bytes (torn write)
	// before failing, modeling a power cut mid-write.
	Crash
)

// ErrInjected is returned by operations failed with Fault Err.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by every operation at and after a Crash fault.
var ErrCrashed = errors.New("faultfs: crashed")

// FS is the fault-injection filesystem. Decide is consulted once per
// mutating operation, in execution order.
type FS struct {
	base   store.FS
	decide func(Op) Fault

	mu      sync.Mutex
	n       int
	crashed bool
	syncs   int
	writes  int
}

// New builds a fault-injection FS over the real filesystem. decide may be
// nil, which injects nothing (useful for counting a workload's operations
// before enumerating crash points).
func New(decide func(Op) Fault) *FS {
	if decide == nil {
		decide = func(Op) Fault { return None }
	}
	return &FS{base: store.OSFS{}, decide: decide}
}

// CrashAt returns a Decide function that crashes on the nth mutating
// operation (1-based).
func CrashAt(n int) func(Op) Fault {
	return func(op Op) Fault {
		if op.N == n {
			return Crash
		}
		return None
	}
}

// ErrOn returns a Decide function that fails the nth operation of the
// given kind (1-based, counted per kind) with ErrInjected, once.
func ErrOn(kind Kind, n int) func(Op) Fault {
	seen := 0
	var mu sync.Mutex
	return func(op Op) Fault {
		if op.Kind != kind {
			return None
		}
		mu.Lock()
		defer mu.Unlock()
		seen++
		if seen == n {
			return Err
		}
		return None
	}
}

// Ops reports how many mutating operations the FS has seen.
func (f *FS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Crashed reports whether a Crash fault has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// SyncCalls reports how many file fsyncs were attempted.
func (f *FS) SyncCalls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

// WriteCalls reports how many file writes were attempted.
func (f *FS) WriteCalls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// step records one mutating operation and returns the injection decision.
func (f *FS) step(kind Kind, path string) (Fault, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return Crash, ErrCrashed
	}
	f.n++
	switch kind {
	case OpSync:
		f.syncs++
	case OpWrite:
		f.writes++
	}
	fault := f.decide(Op{Kind: kind, Path: path, N: f.n})
	if fault == Crash {
		f.crashed = true
	}
	return fault, nil
}

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (store.File, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	inner, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{inner: inner, fs: f, path: name}, nil
}

func (f *FS) Open(name string) (store.File, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	inner, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &file{inner: inner, fs: f, path: name}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	switch fault, err := f.step(OpRename, newpath); {
	case err != nil:
		return err
	case fault == Err:
		return ErrInjected
	case fault == Crash:
		return ErrCrashed
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	switch fault, err := f.step(OpRemove, name); {
	case err != nil:
		return err
	case fault == Err:
		return ErrInjected
	case fault == Crash:
		return ErrCrashed
	}
	return f.base.Remove(name)
}

func (f *FS) Truncate(name string, size int64) error {
	switch fault, err := f.step(OpTruncate, name); {
	case err != nil:
		return err
	case fault == Err:
		return ErrInjected
	case fault == Crash:
		return ErrCrashed
	}
	return f.base.Truncate(name, size)
}

func (f *FS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return f.base.ReadDir(dir)
}

func (f *FS) SyncDir(dir string) error {
	switch fault, err := f.step(OpSyncDir, dir); {
	case err != nil:
		return err
	case fault == Err:
		return ErrInjected
	case fault == Crash:
		return ErrCrashed
	}
	return f.base.SyncDir(dir)
}

// file wraps a real file, routing writes and fsyncs through the fault
// plan.
type file struct {
	inner store.File
	fs    *FS
	path  string
}

func (w *file) Write(p []byte) (int, error) {
	switch fault, err := w.fs.step(OpWrite, w.path); {
	case err != nil:
		return 0, err
	case fault == Err:
		return 0, ErrInjected
	case fault == Crash:
		// Torn write: a prefix reaches the disk, the rest is lost.
		n, _ := w.inner.Write(p[:len(p)/2])
		return n, ErrCrashed
	}
	return w.inner.Write(p)
}

func (w *file) Sync() error {
	switch fault, err := w.fs.step(OpSync, w.path); {
	case err != nil:
		return err
	case fault == Err:
		return ErrInjected
	case fault == Crash:
		return ErrCrashed
	}
	return w.inner.Sync()
}

func (w *file) Read(p []byte) (int, error) {
	w.fs.mu.Lock()
	crashed := w.fs.crashed
	w.fs.mu.Unlock()
	if crashed {
		return 0, ErrCrashed
	}
	return w.inner.Read(p)
}

func (w *file) Seek(offset int64, whence int) (int64, error) { return w.inner.Seek(offset, whence) }

func (w *file) Stat() (os.FileInfo, error) { return w.inner.Stat() }

func (w *file) Close() error { return w.inner.Close() }
