package store

import (
	"io"
	"os"
	"path/filepath"
)

// FS abstracts the filesystem operations the durability layer performs.
// Production stores use the process filesystem (OSFS); tests inject a
// fault-injection implementation (internal/store/faultfs) to exercise
// short writes, fsync failures and crash-at-any-point recovery without
// killing the process.
type FS interface {
	// OpenFile opens a file with the given flags, creating it when
	// os.O_CREATE is set.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens a file read-only.
	Open(name string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate cuts the named file to size bytes.
	Truncate(name string, size int64) error
	// ReadDir lists the file names inside dir.
	ReadDir(dir string) ([]string, error)
	// SyncDir fsyncs a directory, making renames and file creations
	// inside it durable.
	SyncDir(dir string) error
}

// File is the subset of *os.File the log writer and replay need.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Stat() (os.FileInfo, error)
}

// OSFS is the production FS: a thin veneer over the os package.
type OSFS struct{}

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OSFS) Open(name string) (File, error) { return os.Open(name) }

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names, nil
}

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncParentDir fsyncs the directory containing path.
func syncParentDir(fsys FS, path string) error {
	return fsys.SyncDir(filepath.Dir(path))
}
