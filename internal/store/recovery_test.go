package store

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"repro/internal/provenance"
)

// applyRandomOps drives a store with a random but valid operation
// sequence, returning the IDs created. The same rng seed reproduces the
// same sequence.
func applyRandomOps(t *testing.T, s *Store, rng *rand.Rand, prefix string, ops int) {
	t.Helper()
	var nodes []string
	for i := 0; i < ops; i++ {
		switch {
		case len(nodes) < 2 || rng.Intn(10) < 5:
			id := fmt.Sprintf("%sn%d", prefix, len(nodes))
			app := fmt.Sprintf("A%d", rng.Intn(3))
			n := mkReq(id, app, fmt.Sprintf("REQ%d", rng.Intn(50)))
			if err := s.PutNode(n); err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, id)
		case rng.Intn(10) < 7:
			id := nodes[rng.Intn(len(nodes))]
			old := s.Node(id)
			upd := mkReq(id, old.AppID, fmt.Sprintf("REQ%d", rng.Intn(50)))
			if err := s.UpdateNode(upd); err != nil {
				t.Fatal(err)
			}
		default:
			a := s.Node(nodes[rng.Intn(len(nodes))])
			b := s.Node(nodes[rng.Intn(len(nodes))])
			if a.ID == b.ID || a.AppID != b.AppID {
				continue
			}
			// The test model's submitterOf requires person->jobRequisition;
			// use SkipValidation-free edges only when types allow. All our
			// nodes are requisitions, so declare a free-form relation in
			// the model instead (see recoveryModel).
			e := &provenance.Edge{
				ID: fmt.Sprintf("%se%d", prefix, i), Type: "relatedTo",
				AppID: a.AppID, Source: a.ID, Target: b.ID,
			}
			if err := s.PutEdge(e); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func recoveryModel(t testing.TB) *provenance.Model {
	t.Helper()
	m := testModel(t)
	if err := m.AddRelation(&provenance.RelationDef{Name: "relatedTo"}); err != nil {
		t.Fatal(err)
	}
	return m
}

// snapshotState captures the full observable state of a store.
func snapshotState(t *testing.T, s *Store) map[string]string {
	t.Helper()
	state := make(map[string]string)
	err := s.View(func(g *provenance.Graph) error {
		for _, app := range g.AppIDs() {
			for _, n := range g.Nodes(provenance.NodeFilter{AppID: app}) {
				state["node:"+n.ID] = n.String()
			}
			for _, e := range g.AllEdges(provenance.EdgeFilter{AppID: app}) {
				state["edge:"+e.ID] = e.String()
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return state
}

// TestRecoveryEquivalenceProperty: for random operation sequences, closing
// and reopening the store reproduces exactly the same observable state —
// including after a compaction in the middle.
func TestRecoveryEquivalenceProperty(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			dir := t.TempDir()
			m := recoveryModel(t)
			s, err := Open(Options{Dir: dir, Model: m})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(trial)))
			applyRandomOps(t, s, rng, "p1-", 100)
			if trial%2 == 0 {
				if err := s.Compact(); err != nil {
					t.Fatal(err)
				}
				applyRandomOps(t, s, rng, "p2-", 20)
			}
			want := snapshotState(t, s)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			s2, err := Open(Options{Dir: dir, Model: m})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			got := snapshotState(t, s2)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("state diverged after recovery:\nwant %d entries, got %d",
					len(want), len(got))
			}
		})
	}
}

// TestCrashAtEveryByteOffset truncates the log at many offsets and checks
// the store always recovers to a valid prefix without errors — the
// at-most-one-record-lost guarantee.
func TestCrashAtEveryByteOffset(t *testing.T) {
	dir := t.TempDir()
	m := recoveryModel(t)
	s, err := Open(Options{Dir: dir, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.PutNode(mkReq(fmt.Sprintf("n%d", i), "A", fmt.Sprintf("REQ%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}

	// Sample offsets densely: every 7 bytes plus the exact end.
	offsets := []int{}
	for cut := len(logMagic); cut < len(full); cut += 7 {
		offsets = append(offsets, cut)
	}
	offsets = append(offsets, len(full))
	var lastNodes = -1
	for _, cut := range offsets {
		crashDir := t.TempDir()
		if err := os.WriteFile(logPath(crashDir), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(Options{Dir: crashDir, Model: recoveryModel(t)})
		if err != nil {
			t.Fatalf("cut at %d: recovery failed: %v", cut, err)
		}
		nodes := s2.Stats().Nodes
		if nodes < 0 || nodes > 10 {
			t.Fatalf("cut at %d: %d nodes", cut, nodes)
		}
		// Recovered prefixes must be monotone in the cut position.
		if nodes < lastNodes {
			t.Fatalf("cut at %d: nodes went backwards (%d -> %d)", cut, lastNodes, nodes)
		}
		lastNodes = nodes
		// The store remains writable after any crash point.
		if err := s2.PutNode(mkReq("fresh", "A", "REQX")); err != nil {
			t.Fatalf("cut at %d: post-recovery write failed: %v", cut, err)
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if lastNodes != 10 {
		t.Fatalf("full log recovered %d nodes, want 10", lastNodes)
	}
}
