package store

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// TestExportImportRoundTrip ships two traces (one hot, one sealed) to a
// second store and checks the externally observable state survives the
// move, including dedup on redelivery.
func TestHandoffExportImportRoundTrip(t *testing.T) {
	src := tierStore(t, t.TempDir(), nil)
	seedTrace(t, src, "A", 3)
	seedTrace(t, src, "B", 2)
	seedTrace(t, src, "C", 1)
	if err := src.DemoteTraces("B"); err != nil {
		t.Fatal(err)
	}
	fpA, fpB := traceFingerprint(t, src, "A"), traceFingerprint(t, src, "B")

	var buf bytes.Buffer
	st, err := src.ExportTraces(&buf, []string{"A", "B", "ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Traces != 2 {
		t.Fatalf("exported %d traces, want 2 (ghost skipped)", st.Traces)
	}
	if st.Rows != len(src.RowsForApp("A"))+len(src.RowsForApp("B")) {
		t.Fatalf("exported %d rows", st.Rows)
	}

	dst := tierStore(t, t.TempDir(), nil)
	stream := buf.Bytes()
	ins, skip, err := dst.ImportSegment(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if ins != st.Rows || skip != 0 {
		t.Fatalf("import inserted=%d skipped=%d, want %d/0", ins, skip, st.Rows)
	}
	// Versions restart on the target (it observed each record once), so
	// compare structure, not version counters.
	for _, app := range []string{"A", "B"} {
		want := fpA
		if app == "B" {
			want = fpB
		}
		got := traceFingerprint(t, dst, app)
		delete(got, "ver")
		delete(got, "view-ver")
		w := map[string]string{}
		for k, v := range want {
			if k != "ver" && k != "view-ver" {
				w[k] = v
			}
		}
		if !reflect.DeepEqual(got, w) {
			t.Fatalf("trace %s diverged after handoff:\n got %v\nwant %v", app, got, w)
		}
	}
	if dst.TraceVersion("C") != 0 {
		t.Fatal("unexported trace leaked")
	}
	// Redelivery (bulk/tail overlap, router retry) dedups by record ID.
	ins, skip, err = dst.ImportSegment(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if ins != 0 || skip != st.Rows {
		t.Fatalf("redelivery inserted=%d skipped=%d, want 0/%d", ins, skip, st.Rows)
	}
}

func TestExportNothingImportNothing(t *testing.T) {
	s := tierStore(t, t.TempDir(), nil)
	var buf bytes.Buffer
	st, err := s.ExportTraces(&buf, []string{"ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Traces != 0 || buf.Len() != 0 {
		t.Fatalf("empty export: %+v, %d bytes", st, buf.Len())
	}
	if ins, skip, err := s.ImportSegment(&buf); err != nil || ins != 0 || skip != 0 {
		t.Fatalf("empty import: %d/%d/%v", ins, skip, err)
	}
	if _, _, err := s.ImportSegment(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage stream accepted")
	}
}

// TestDropTraces covers the handoff tombstone: hot and sealed traces
// drop, survive restart, and scrub their sealed copies.
func TestDropTraces(t *testing.T) {
	dir := t.TempDir()
	s := tierStore(t, dir, nil)
	seedTrace(t, s, "A", 2) // stays hot
	seedTrace(t, s, "B", 2) // sealed below
	seedTrace(t, s, "K", 2) // kept, sealed in the same segment as B
	if err := s.DemoteTraces("B", "K"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropTraces("A", "B"); err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"A", "B"} {
		if v := s.TraceVersion(app); v != 0 {
			t.Fatalf("dropped %s still versioned %d", app, v)
		}
		if n := s.Node("r-" + app + "-0"); n != nil {
			t.Fatalf("dropped %s node still resolvable", app)
		}
		if rows := s.RowsForApp(app); len(rows) != 0 {
			t.Fatalf("dropped %s still has %d rows", app, len(rows))
		}
	}
	for _, app := range s.AppIDs() {
		if app == "A" || app == "B" {
			t.Fatalf("dropped %s still listed", app)
		}
	}
	// K shared B's segment; the scrub rewrote it in place and K survived.
	if got := traceFingerprint(t, s, "K"); got["node:r-K-0"] == "" {
		t.Fatalf("survivor K lost state: %v", got)
	}
	if ti := s.Tiering(); ti.SegmentsReclaimed != 1 {
		t.Fatalf("scrub reclaimed %d segments, want 1 (rewrite)", ti.SegmentsReclaimed)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tombstones replay: the drop survives restart.
	s2 := tierStore(t, dir, nil)
	for _, app := range []string{"A", "B"} {
		if v := s2.TraceVersion(app); v != 0 {
			t.Fatalf("restart resurrected %s at version %d", app, v)
		}
	}
	if got := traceFingerprint(t, s2, "K"); got["node:r-K-0"] == "" {
		t.Fatalf("restart lost survivor K: %v", got)
	}
	// A handed-back trace re-imports cleanly after a drop.
	seedTrace(t, s2, "B", 1)
	if v := s2.TraceVersion("B"); v != 3 {
		t.Fatalf("re-imported B version = %d, want 3", v)
	}
}

// TestSegmentGC covers the compaction GC satellite: promoted-back and
// superseded segments are reclaimed, the ablation keeps them, and live
// reads never break.
func TestSegmentGC(t *testing.T) {
	s := tierStore(t, t.TempDir(), nil)
	seedTrace(t, s, "A", 2)
	seedTrace(t, s, "B", 2)
	if err := s.DemoteTraces("A", "B"); err != nil {
		t.Fatal(err)
	}
	if n := len(s.Segments()); n != 1 {
		t.Fatalf("segments = %d, want 1", n)
	}
	// Promote A back (write) and reseal it: the second compaction's GC
	// must NOT reclaim segment 1 — it still holds the only copy of B.
	if err := s.PutNode(mkReq("r-A-new", "A", "REQ-A-NEW")); err != nil {
		t.Fatal(err)
	}
	if err := s.DemoteTraces("A"); err != nil {
		t.Fatal(err)
	}
	if n := len(s.Segments()); n != 2 {
		t.Fatalf("segments after reseal = %d (reclaimed=%d), want 2",
			n, s.Tiering().SegmentsReclaimed)
	}
	// Promote B back too: now every copy in segment 1 is dead (A
	// superseded by segment 2, B hot) and GC deletes it.
	if err := s.PutNode(mkReq("r-B-new", "B", "REQ-B-NEW")); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	segs := s.Segments()
	for _, seg := range segs {
		if seg.ID == 1 {
			t.Fatalf("segment 1 not reclaimed: %+v", segs)
		}
	}
	if ti := s.Tiering(); ti.SegmentsReclaimed == 0 {
		t.Fatalf("SegmentsReclaimed = 0 after GC")
	}
	// Both traces still fully readable from their live homes.
	for _, app := range []string{"A", "B"} {
		fp := traceFingerprint(t, s, app)
		if fp["node:r-"+app+"-0"] == "" || fp["node:r-"+app+"-new"] == "" {
			t.Fatalf("trace %s lost state after GC: %v", app, fp)
		}
	}
}

func TestSegmentGCDisabled(t *testing.T) {
	s := tierStore(t, t.TempDir(), func(o *Options) { o.DisableSegmentGC = true })
	seedTrace(t, s, "A", 2)
	if err := s.DemoteTraces("A"); err != nil {
		t.Fatal(err)
	}
	if err := s.PutNode(mkReq("r-A-new", "A", "REQ-A-NEW")); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := len(s.Segments()); n != 1 {
		t.Fatalf("ablation reclaimed segments: %d left", n)
	}
	if ti := s.Tiering(); ti.SegmentsReclaimed != 0 {
		t.Fatalf("ablation counted reclaims: %d", ti.SegmentsReclaimed)
	}
	// Explicit GC still works as an operator action.
	if n := s.GCSegments(); n != 1 {
		t.Fatalf("manual GC reclaimed %d, want 1", n)
	}
}

// TestGCKeepsAsOfForLiveSegments: GC must never delete a segment whose
// copy is still the newest sealed state of a non-promoted trace.
func TestGCKeepsLiveColdTraces(t *testing.T) {
	s := tierStore(t, t.TempDir(), nil)
	for i := 0; i < 4; i++ {
		seedTrace(t, s, fmt.Sprintf("T%d", i), 1)
	}
	if err := s.DemoteTraces("T0", "T1", "T2", "T3"); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil { // GC pass with nothing dead
		t.Fatal(err)
	}
	if n := len(s.Segments()); n != 1 {
		t.Fatalf("GC deleted a live segment: %d segments", n)
	}
	for i := 0; i < 4; i++ {
		app := fmt.Sprintf("T%d", i)
		if fp := traceFingerprint(t, s, app); fp["node:r-"+app+"-0"] == "" {
			t.Fatalf("cold trace %s unreadable", app)
		}
	}
}
