package store

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/provenance"
)

// TestConcurrentReadersAndWriters hammers a store with parallel writers,
// readers, an index prober and a subscriber, relying on the race detector
// for soundness and on the final census for completeness.
func TestConcurrentReadersAndWriters(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), Model: testModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const writers = 4
	const perWriter = 250
	sub := s.Subscribe()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("w%d-n%d", w, i)
				if err := s.PutNode(mkReq(id, fmt.Sprintf("A%d", w), fmt.Sprintf("REQ-%s", id))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Readers run concurrently with the writers.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = s.Stats()
				_ = s.AppIDs()
				_ = s.Node(fmt.Sprintf("w0-n%d", i%perWriter))
				_, _ = s.LookupByAttr("jobRequisition", "reqID",
					provenance.String(fmt.Sprintf("REQ-w1-n%d", i%perWriter)))
				if err := s.View(func(g *provenance.Graph) error {
					g.Nodes(provenance.NodeFilter{AppID: "A2"})
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := s.Stats().Nodes; got != writers*perWriter {
		t.Fatalf("nodes = %d, want %d", got, writers*perWriter)
	}
	// The subscriber received every commit exactly once, in order.
	sub.Cancel()
	var count int
	var lastSeq uint64
	for ev := range sub.C() {
		if ev.Seq <= lastSeq {
			t.Fatalf("event order violated: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		count++
	}
	if count != writers*perWriter {
		t.Fatalf("subscriber saw %d events, want %d", count, writers*perWriter)
	}
}

// TestConcurrentCompaction compacts while writers are active; the store
// must lose nothing.
func TestConcurrentCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Model: testModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := s.PutNode(mkReq(fmt.Sprintf("n%d", i), "A", fmt.Sprintf("R%d", i))); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 5; i++ {
		if err := s.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir, Model: testModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().Nodes; got != n {
		t.Fatalf("recovered %d nodes, want %d", got, n)
	}
}
