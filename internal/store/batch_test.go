package store

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/provenance"
)

// TestPutNodesCommitsRunAsOneUnit: a PutNodes run lands in the store as
// one commit unit — every node recorded, visible together, and (on the
// group-commit path) counted as a single commit batch.
func TestPutNodesCommitsRunAsOneUnit(t *testing.T) {
	for _, mode := range []string{"memory", "disk", "disk-sync"} {
		t.Run(mode, func(t *testing.T) {
			opts := Options{Model: testModel(t)}
			switch mode {
			case "disk":
				opts.Dir = t.TempDir()
			case "disk-sync":
				opts.Dir = t.TempDir()
				opts.Sync = true
			}
			s, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			before := s.Durability()
			ns := make([]*provenance.Node, 40)
			for i := range ns {
				ns[i] = mkReq(fmt.Sprintf("r%02d", i), fmt.Sprintf("A%d", i%4), fmt.Sprintf("REQ%02d", i))
			}
			for i, err := range s.PutNodes(ns) {
				if err != nil {
					t.Fatalf("node %d: %v", i, err)
				}
			}
			if got := s.Stats().Nodes; got != len(ns) {
				t.Fatalf("nodes = %d, want %d", got, len(ns))
			}
			for _, n := range ns {
				if s.Node(n.ID) == nil {
					t.Fatalf("node %s not visible", n.ID)
				}
			}
			after := s.Durability()
			if mode == "disk-sync" {
				// The run shares fsyncs: far fewer than one per record.
				if syncs := after.Fsyncs - before.Fsyncs; syncs == 0 || syncs >= uint64(len(ns)) {
					t.Fatalf("fsyncs = %d for %d records", syncs, len(ns))
				}
			}
			if mode != "memory" {
				if after.CommitBatches == before.CommitBatches {
					t.Fatal("no commit batch recorded")
				}
				if after.MaxCommitBatch < uint64(len(ns)) {
					t.Fatalf("MaxCommitBatch = %d, want >= %d", after.MaxCommitBatch, len(ns))
				}
			}
		})
	}
}

// TestPutNodesPerEntryErrors: invalid and duplicate nodes fail alone; the
// rest of the run stays recorded, and duplicate rejections carry the
// provenance.ErrDuplicate sentinel at-least-once deliverers match on.
func TestPutNodesPerEntryErrors(t *testing.T) {
	s := memStore(t)
	if err := s.PutNode(mkReq("dup", "A", "REQ0")); err != nil {
		t.Fatal(err)
	}
	ns := []*provenance.Node{
		mkReq("ok1", "A", "REQ1"),
		mkReq("dup", "A", "REQ0"), // duplicate ID
		{ID: "bad", Class: provenance.ClassData, Type: "ghost", AppID: "A"}, // undeclared type
		mkReq("ok2", "B", "REQ2"),
	}
	errs := s.PutNodes(ns)
	if errs[0] != nil || errs[3] != nil {
		t.Fatalf("valid nodes failed: %v / %v", errs[0], errs[3])
	}
	if !errors.Is(errs[1], provenance.ErrDuplicate) {
		t.Fatalf("duplicate error = %v, want ErrDuplicate", errs[1])
	}
	if errs[2] == nil {
		t.Fatal("undeclared type accepted")
	}
	if s.Node("ok1") == nil || s.Node("ok2") == nil {
		t.Fatal("valid run members not recorded")
	}
}

// TestPutNodesChangeFeed: one run emits one change-feed event per recorded
// node, after the covering snapshot is published.
func TestPutNodesChangeFeed(t *testing.T) {
	s := memStore(t)
	sub := s.Subscribe()
	defer sub.Cancel()
	ns := []*provenance.Node{mkReq("r1", "A", "R1"), mkReq("r2", "A", "R2"), mkReq("r3", "B", "R3")}
	for i, err := range s.PutNodes(ns) {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	for i := range ns {
		ev, ok := <-sub.C()
		if !ok {
			t.Fatalf("feed closed after %d events", i)
		}
		if ev.Kind != EventNode || ev.Node.ID != ns[i].ID {
			t.Fatalf("event %d = %+v, want node %s", i, ev, ns[i].ID)
		}
	}
}

// TestPutNodesClosedStore: a run against a closed store fails every entry.
func TestPutNodesClosedStore(t *testing.T) {
	s, err := Open(Options{Model: testModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	errs := s.PutNodes([]*provenance.Node{mkReq("r1", "A", "R1"), mkReq("r2", "A", "R2")})
	for i, err := range errs {
		if err == nil {
			t.Fatalf("entry %d accepted after close", i)
		}
	}
}

// TestPutNodesRecoveredAfterReplay: a batch-committed run survives reopen
// exactly like per-record commits do.
func TestPutNodesRecoveredAfterReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Model: testModel(t), Dir: dir, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	ns := make([]*provenance.Node, 10)
	for i := range ns {
		ns[i] = mkReq(fmt.Sprintf("r%d", i), "A", fmt.Sprintf("REQ%d", i))
	}
	for i, err := range s.PutNodes(ns) {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Options{Model: testModel(t), Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Stats().Nodes; got != len(ns) {
		t.Fatalf("recovered %d nodes, want %d", got, len(ns))
	}
}
