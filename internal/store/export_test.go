package store

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func seededForExport(t *testing.T) *Store {
	t.Helper()
	m := testModel(t)
	s, err := Open(Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	for i := 0; i < 5; i++ {
		if err := s.PutNode(mkReq(fmt.Sprintf("r%d", i), "A", fmt.Sprintf("REQ%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutNode(mkPerson("p1", "A", "Joe")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutEdge(mkSubmitter("e1", "A", "p1", "r0")); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExportImportRoundTrip(t *testing.T) {
	src := seededForExport(t)
	var buf bytes.Buffer
	if err := src.ExportRows(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 7 {
		t.Fatalf("exported %d lines, want 7", got)
	}

	dst, err := Open(Options{Model: testModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	inserted, skipped, err := dst.ImportRows(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if inserted != 7 || skipped != 0 {
		t.Fatalf("import = %d inserted, %d skipped", inserted, skipped)
	}
	// Observable state identical: compare re-exports.
	var buf2 bytes.Buffer
	if err := dst.ExportRows(&buf2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(buf.String(), buf2.String()) {
		t.Fatal("re-export differs from original export")
	}
	// Indexes rebuilt through the write path.
	ids, indexed := dst.LookupByAttr("jobRequisition", "reqID",
		mkReq("x", "A", "REQ3").Attrs["reqID"])
	if !indexed || len(ids) != 1 || ids[0] != "r3" {
		t.Fatalf("index after import: %v %v", ids, indexed)
	}
}

func TestImportSkipsExisting(t *testing.T) {
	src := seededForExport(t)
	var buf bytes.Buffer
	if err := src.ExportRows(&buf); err != nil {
		t.Fatal(err)
	}
	// Import into the same store: everything already present.
	inserted, skipped, err := src.ImportRows(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if inserted != 0 || skipped != 7 {
		t.Fatalf("self-import = %d inserted, %d skipped", inserted, skipped)
	}
}

func TestImportDeferredEdges(t *testing.T) {
	// A stream with the edge before its endpoints must still import.
	src := seededForExport(t)
	var buf bytes.Buffer
	if err := src.ExportRows(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Move the last line (the edge) to the front.
	reordered := append([]string{lines[len(lines)-1]}, lines[:len(lines)-1]...)
	dst, err := Open(Options{Model: testModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	inserted, _, err := dst.ImportRows(strings.NewReader(strings.Join(reordered, "\n") + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if inserted != 7 {
		t.Fatalf("inserted = %d", inserted)
	}
	if dst.Edge("e1") == nil {
		t.Fatal("deferred edge lost")
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	dst, err := Open(Options{Model: testModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if _, _, err := dst.ImportRows(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage imported")
	}
	bad := `{"ID":"x","Class":"data","AppID":"A","XML":"<broken"}`
	if _, _, err := dst.ImportRows(strings.NewReader(bad + "\n")); err == nil {
		t.Fatal("broken XML imported")
	}
}
