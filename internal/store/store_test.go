package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/provenance"
)

// testModel declares the types used across the store tests.
func testModel(t testing.TB) *provenance.Model {
	t.Helper()
	m := provenance.NewModel("test")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.AddType(&provenance.TypeDef{Name: "jobRequisition", Class: provenance.ClassData}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{Name: "reqID", Kind: provenance.KindString, Indexed: true}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{Name: "positionType", Kind: provenance.KindString}))
	must(m.AddType(&provenance.TypeDef{Name: "person", Class: provenance.ClassResource}))
	must(m.AddField("person", &provenance.FieldDef{Name: "name", Kind: provenance.KindString}))
	must(m.AddRelation(&provenance.RelationDef{Name: "submitterOf", SourceType: "person", TargetType: "jobRequisition"}))
	return m
}

func memStore(t testing.TB) *Store {
	t.Helper()
	s, err := Open(Options{Model: testModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mkReq(id, app, reqID string) *provenance.Node {
	return &provenance.Node{
		ID: id, Class: provenance.ClassData, Type: "jobRequisition", AppID: app,
		Timestamp: time.Unix(1000, 0).UTC(),
		Attrs: map[string]provenance.Value{
			"reqID":        provenance.String(reqID),
			"positionType": provenance.String("new"),
		},
	}
}

func mkPerson(id, app, name string) *provenance.Node {
	return &provenance.Node{
		ID: id, Class: provenance.ClassResource, Type: "person", AppID: app,
		Attrs: map[string]provenance.Value{"name": provenance.String(name)},
	}
}

func mkSubmitter(id, app, src, dst string) *provenance.Edge {
	return &provenance.Edge{ID: id, Type: "submitterOf", AppID: app, Source: src, Target: dst}
}

func TestStorePutAndGet(t *testing.T) {
	s := memStore(t)
	if err := s.PutNode(mkReq("r1", "A", "REQ1")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutNode(mkPerson("p1", "A", "Joe")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutEdge(mkSubmitter("e1", "A", "p1", "r1")); err != nil {
		t.Fatal(err)
	}
	n := s.Node("r1")
	if n == nil || n.Attr("reqID").Str() != "REQ1" {
		t.Fatalf("Node(r1) = %v", n)
	}
	// Returned records are shared with the immutable snapshot and
	// read-only by contract; mutation goes through Clone + UpdateNode.
	cp := n.Clone()
	cp.SetAttr("reqID", provenance.String("REQ1-cloned"))
	if s.Node("r1").Attr("reqID").Str() != "REQ1" {
		t.Error("mutating a clone affected the store")
	}
	e := s.Edge("e1")
	if e == nil || e.Source != "p1" {
		t.Fatalf("Edge(e1) = %v", e)
	}
	if s.Node("ghost") != nil || s.Edge("ghost") != nil {
		t.Error("missing records returned non-nil")
	}
	st := s.Stats()
	if st.Nodes != 2 || st.Edges != 1 || st.Rows != 3 || st.Seq != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreValidation(t *testing.T) {
	s := memStore(t)
	bad := mkReq("r1", "A", "REQ1")
	bad.Type = "undeclared"
	if err := s.PutNode(bad); err == nil {
		t.Error("undeclared type accepted")
	}
	if err := s.PutNode(mkReq("r1", "A", "REQ1")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutNode(mkReq("r1", "A", "REQ1")); err == nil {
		t.Error("duplicate ID accepted")
	}
	// Edge endpoint type validation uses the live graph.
	if err := s.PutNode(mkPerson("p1", "A", "Joe")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutEdge(mkSubmitter("e1", "A", "r1", "p1")); err == nil {
		t.Error("reversed endpoint types accepted")
	}
}

func TestStoreSkipValidation(t *testing.T) {
	s, err := Open(Options{SkipValidation: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n := &provenance.Node{ID: "x", Class: provenance.ClassData, Type: "anything", AppID: "A",
		Attrs: map[string]provenance.Value{"whatever": provenance.Int(1)}}
	if err := s.PutNode(n); err != nil {
		t.Fatalf("unvalidated put failed: %v", err)
	}
	if _, err := Open(Options{}); err == nil {
		t.Error("Open without model and without SkipValidation succeeded")
	}
}

func TestStoreUpdateNode(t *testing.T) {
	s := memStore(t)
	if err := s.PutNode(mkReq("r1", "A", "REQ1")); err != nil {
		t.Fatal(err)
	}
	upd := mkReq("r1", "A", "REQ1-v2")
	if err := s.UpdateNode(upd); err != nil {
		t.Fatal(err)
	}
	if got := s.Node("r1").Attr("reqID").Str(); got != "REQ1-v2" {
		t.Fatalf("after update reqID = %q", got)
	}
	// Index must follow the update.
	ids, indexed := s.LookupByAttr("jobRequisition", "reqID", provenance.String("REQ1-v2"))
	if !indexed || len(ids) != 1 || ids[0] != "r1" {
		t.Fatalf("index after update: ids=%v indexed=%v", ids, indexed)
	}
	ids, _ = s.LookupByAttr("jobRequisition", "reqID", provenance.String("REQ1"))
	if len(ids) != 0 {
		t.Fatalf("stale index entry: %v", ids)
	}
	if err := s.UpdateNode(mkReq("ghost", "A", "x")); err == nil {
		t.Error("update of missing node accepted")
	}
}

func TestStoreIndexLookup(t *testing.T) {
	s := memStore(t)
	for i := 0; i < 10; i++ {
		req := mkReq(fmt.Sprintf("r%d", i), fmt.Sprintf("A%d", i), fmt.Sprintf("REQ%d", i%3))
		if err := s.PutNode(req); err != nil {
			t.Fatal(err)
		}
	}
	ids, indexed := s.LookupByAttr("jobRequisition", "reqID", provenance.String("REQ1"))
	if !indexed {
		t.Fatal("declared index not used")
	}
	if len(ids) != 3 { // i = 1, 4, 7
		t.Fatalf("indexed lookup = %v", ids)
	}
	// Unindexed field: falls back to scan, indexed=false.
	ids, indexed = s.LookupByAttr("jobRequisition", "positionType", provenance.String("new"))
	if indexed {
		t.Error("undeclared index reported as used")
	}
	if len(ids) != 10 {
		t.Fatalf("scan lookup = %d ids", len(ids))
	}
}

func TestStoreDisableIndexes(t *testing.T) {
	s, err := Open(Options{Model: testModel(t), DisableIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.PutNode(mkReq("r1", "A", "REQ1")); err != nil {
		t.Fatal(err)
	}
	ids, indexed := s.LookupByAttr("jobRequisition", "reqID", provenance.String("REQ1"))
	if indexed {
		t.Error("index used despite DisableIndexes")
	}
	if len(ids) != 1 || ids[0] != "r1" {
		t.Fatalf("scan fallback = %v", ids)
	}
}

func TestStoreRows(t *testing.T) {
	s := memStore(t)
	if err := s.PutNode(mkReq("r1", "A", "REQ1")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutNode(mkPerson("p1", "A", "Joe")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutNode(mkReq("r2", "B", "REQ2")); err != nil {
		t.Fatal(err)
	}
	rows := s.RowsForApp("A")
	if len(rows) != 2 || rows[0].ID != "p1" || rows[1].ID != "r1" {
		t.Fatalf("RowsForApp = %+v", rows)
	}
	r, ok := s.Row("r2")
	if !ok || r.AppID != "B" || r.Class != "data" {
		t.Fatalf("Row(r2) = %+v ok=%v", r, ok)
	}
	if _, ok := s.Row("ghost"); ok {
		t.Error("Row(ghost) found")
	}
}

func TestStoreView(t *testing.T) {
	s := memStore(t)
	if err := s.PutNode(mkReq("r1", "A", "REQ1")); err != nil {
		t.Fatal(err)
	}
	var count int
	err := s.View(func(g *provenance.Graph) error {
		count = g.NumNodes()
		return nil
	})
	if err != nil || count != 1 {
		t.Fatalf("View: count=%d err=%v", count, err)
	}
	wantErr := fmt.Errorf("boom")
	if err := s.View(func(*provenance.Graph) error { return wantErr }); err != wantErr {
		t.Errorf("View error not propagated: %v", err)
	}
}

func TestStorePersistenceAndRecovery(t *testing.T) {
	dir := t.TempDir()
	open := func() *Store {
		s, err := Open(Options{Dir: dir, Model: testModel(t)})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := open()
	if err := s.PutNode(mkReq("r1", "A", "REQ1")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutNode(mkPerson("p1", "A", "Joe")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutEdge(mkSubmitter("e1", "A", "p1", "r1")); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdateNode(mkReq("r1", "A", "REQ1-v2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open()
	defer s2.Close()
	st := s2.Stats()
	if st.Nodes != 2 || st.Edges != 1 {
		t.Fatalf("recovered stats = %+v", st)
	}
	if got := s2.Node("r1").Attr("reqID").Str(); got != "REQ1-v2" {
		t.Fatalf("recovered update lost: %q", got)
	}
	ids, indexed := s2.LookupByAttr("jobRequisition", "reqID", provenance.String("REQ1-v2"))
	if !indexed || len(ids) != 1 {
		t.Fatalf("recovered index: ids=%v indexed=%v", ids, indexed)
	}
	// Writes continue to work after recovery.
	if err := s2.PutNode(mkReq("r2", "B", "REQ9")); err != nil {
		t.Fatal(err)
	}
}

func TestStoreTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Model: testModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.PutNode(mkReq(fmt.Sprintf("r%d", i), "A", fmt.Sprintf("REQ%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: chop bytes off the log tail.
	path := logPath(dir)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-7); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir, Model: testModel(t)})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s2.Close()
	if got := s2.Stats().Nodes; got != 4 {
		t.Fatalf("recovered %d nodes, want 4 (last frame torn)", got)
	}
	// The torn tail was truncated; appends resume cleanly.
	if err := s2.PutNode(mkReq("rX", "A", "REQX")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(Options{Dir: dir, Model: testModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.Stats().Nodes; got != 5 {
		t.Fatalf("after re-append got %d nodes, want 5", got)
	}
}

func TestStoreGarbageLogRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "provenance.log"), []byte("GARBAGE!data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Model: testModel(t)}); err == nil {
		t.Fatal("store opened a non-log file")
	}
}

func TestStoreCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Model: testModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutNode(mkReq("r1", "A", "v0")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutNode(mkPerson("p1", "A", "Joe")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutEdge(mkSubmitter("e1", "A", "p1", "r1")); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		if err := s.UpdateNode(mkReq("r1", "A", fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	before, err := os.Stat(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink the log: %d -> %d", before.Size(), after.Size())
	}
	// Store still serves reads and writes after compaction.
	if got := s.Node("r1").Attr("reqID").Str(); got != "v50" {
		t.Fatalf("after compact reqID = %q", got)
	}
	if err := s.PutNode(mkReq("r2", "B", "REQ2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// And recovery from the compacted log preserves everything.
	s2, err := Open(Options{Dir: dir, Model: testModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Node("r1").Attr("reqID").Str(); got != "v50" {
		t.Fatalf("post-compact recovery reqID = %q", got)
	}
	if s2.Edge("e1") == nil {
		t.Fatal("edge lost in compaction")
	}
	if s2.Node("r2") == nil {
		t.Fatal("post-compact write lost")
	}
}

func TestStoreClosedRejectsWrites(t *testing.T) {
	s := memStore(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.PutNode(mkReq("r1", "A", "REQ1")); err == nil {
		t.Error("write to closed store accepted")
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestStoreAppIDs(t *testing.T) {
	s := memStore(t)
	for _, app := range []string{"B", "A", "C"} {
		if err := s.PutNode(mkReq("r-"+app, app, "REQ")); err != nil {
			t.Fatal(err)
		}
	}
	ids := s.AppIDs()
	if len(ids) != 3 || ids[0] != "A" || ids[2] != "C" {
		t.Fatalf("AppIDs = %v", ids)
	}
}

func BenchmarkStorePutNode(b *testing.B) {
	s, err := Open(Options{Model: testModel(b)})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.PutNode(mkReq(fmt.Sprintf("r%d", i), "A", "REQ")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStorePutNodeDisk(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir(), Model: testModel(b)})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.PutNode(mkReq(fmt.Sprintf("r%d", i), "A", "REQ")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreIndexLookup(b *testing.B) {
	s, err := Open(Options{Model: testModel(b)})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10000; i++ {
		if err := s.PutNode(mkReq(fmt.Sprintf("r%d", i), "A", fmt.Sprintf("REQ%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	v := provenance.String("REQ5000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids, ok := s.LookupByAttr("jobRequisition", "reqID", v)
		if !ok || len(ids) != 1 {
			b.Fatal("lookup failed")
		}
	}
}
