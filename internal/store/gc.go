package store

import (
	"fmt"
	"os"
	"strings"
)

// Segment GC: compaction deletes sealed seg-*.seg files none of whose
// trace copies are live anymore. A sealed copy is dead when
//
//   - the trace is hot-resident at a version >= the sealed one (it was
//     promoted back; promotion re-logged its rows, so the log, not the
//     segment, is its durable home), or
//   - a newer segment holds a copy at a version >= the sealed one
//     (demoted again after a promotion — the newest-first read path
//     never reaches the old copy), or
//   - the trace was tombstoned by shard handoff at or after the
//     segment's seal point.
//
// Deleting a dead segment also deletes its older as-of versions: GC
// trades point-in-time audit depth for space. Operators who need full
// as-of retention run with DisableSegmentGC (provd -no-segment-gc).
//
// Crash safety: a reclaimable segment is redundant by definition, so
// deletion at any moment (or a crash between deletions) leaves every
// trace readable from its live home. Readers holding the previous
// segment list degrade to a bloom false probe on the vanished file,
// which lookup paths already tolerate.

// gcSegmentsLocked scans the cold tier and deletes fully-dead segments.
// Caller holds compactMu (so no seal races the scan). Returns the number
// of files reclaimed.
func (s *Store) gcSegmentsLocked() int {
	t := s.tier
	if t == nil {
		return 0
	}
	hotVer := map[string]uint64{}
	s.readTx(func(tx ReadTx) error {
		for _, app := range tx.g.AppIDs() {
			hotVer[app] = tx.g.TraceVersion(app)
		}
		return nil
	})
	drops := t.pendingDrops()
	segs := t.snapshotSegs()
	reclaimed := 0
	for i, seg := range segs {
		ft, err := t.footer(seg)
		if err != nil {
			continue // unreadable footer: leave it for operators
		}
		dead := true
		for _, tr := range ft.Traces {
			if ds := drops[tr.App]; ds != 0 && seg.sealSeq <= ds {
				continue // handoff tombstone
			}
			if hv, ok := hotVer[tr.App]; ok && hv >= tr.Ver {
				continue // promoted back to hot
			}
			if newerSegmentHolds(t, segs[i+1:], tr.App, tr.Ver) {
				continue // superseded by a later demotion
			}
			dead = false
			break
		}
		if !dead {
			continue
		}
		t.unregister(seg.id)
		t.cache.dropSegment(seg.id)
		if err := s.fs.Remove(seg.path); err != nil && !os.IsNotExist(err) {
			// The file outlives its registration; harmless (it is
			// redundant) and retried by the next GC pass at Open.
			continue
		}
		t.segmentsReclaimed.Add(1)
		reclaimed++
	}
	return reclaimed
}

// newerSegmentHolds reports whether any of the (strictly newer) segments
// carries a copy of app at version >= ver.
func newerSegmentHolds(t *tierManager, newer []*segment, app string, ver uint64) bool {
	for _, seg := range newer {
		if app < seg.minApp || app > seg.maxApp || !seg.bloomTrace.mightContain(app) {
			continue
		}
		ft, err := t.footer(seg)
		if err != nil {
			continue
		}
		if tr, ok := ft.findTrace(app); ok && tr.Ver >= ver {
			return true
		}
	}
	return false
}

// GCSegments runs one segment-GC pass outside a compaction (tests,
// operator tooling). Returns the number of segment files reclaimed.
func (s *Store) GCSegments() int {
	if s.tier == nil {
		return 0
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	return s.gcSegmentsLocked()
}

// scrubDroppedLocked physically removes handoff-tombstoned trace copies
// from the cold tier: a segment whose every trace is dead is deleted, a
// partially-dead one is rewritten in place (temp file + atomic rename
// under its own ID, block cache invalidated). Tombstones are forgotten
// once no sealed copy survives. Caller holds compactMu.
func (s *Store) scrubDroppedLocked() error {
	t := s.tier
	drops := t.pendingDrops()
	if len(drops) == 0 {
		return nil
	}
	for _, seg := range t.snapshotSegs() {
		ft, err := t.footer(seg)
		if err != nil {
			return fmt.Errorf("segment %d: %v", seg.id, err)
		}
		var deadCount int
		deadApps := map[string]bool{}
		for _, tr := range ft.Traces {
			if ds := drops[tr.App]; ds != 0 && seg.sealSeq <= ds {
				deadApps[tr.App] = true
				deadCount++
			}
		}
		if deadCount == 0 {
			continue
		}
		if deadCount == len(ft.Traces) {
			t.unregister(seg.id)
			t.cache.dropSegment(seg.id)
			if err := s.fs.Remove(seg.path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("segment %d: %v", seg.id, err)
			}
			t.segmentsReclaimed.Add(1)
			continue
		}
		if err := s.rewriteSegmentWithout(seg, ft, deadApps); err != nil {
			return fmt.Errorf("segment %d: %v", seg.id, err)
		}
	}
	apps := make([]string, 0, len(drops))
	for app := range drops {
		apps = append(apps, app)
	}
	t.clearDrops(apps)
	return nil
}

// rewriteSegmentWithout rebuilds one sealed segment minus the dead
// traces, preserving its ID, seal sequence and therefore its position in
// the newest-first lookup order. The temp file is fully written and
// re-validated before an atomic rename replaces the original.
func (s *Store) rewriteSegmentWithout(seg *segment, ft *segFooter, dead map[string]bool) error {
	t := s.tier
	keep := make([]segTraceRows, 0, len(ft.Traces)-len(dead))
	for _, tr := range ft.Traces {
		if dead[tr.App] {
			continue
		}
		rows, err := t.traceRows(seg, tr)
		if err != nil {
			return err
		}
		nodes, edges, err := decodeTrace(rows)
		if err != nil {
			return err
		}
		classSeen, typeSeen := map[string]bool{}, map[string]bool{}
		for _, e := range rows {
			classSeen[e.row.Class] = true
		}
		for _, n := range nodes {
			typeSeen[n.Type] = true
		}
		for _, ed := range edges {
			typeSeen[ed.Type] = true
		}
		k := segTraceRows{app: tr.App, ver: tr.Ver, last: tr.Last, rows: rows}
		for c := range classSeen {
			k.classes = append(k.classes, c)
		}
		for ty := range typeSeen {
			k.types = append(k.types, ty)
		}
		keep = append(keep, k)
	}
	tmp := seg.path + ".tmp"
	if err := s.fs.Remove(tmp); err != nil && !os.IsNotExist(err) {
		return err
	}
	if _, err := writeSegment(s.fs, tmp, seg.sealSeq, keep, s.opts.SegmentBlockBytes); err != nil {
		return err
	}
	if _, err := openSegment(s.fs, tmp, seg.id); err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("validating rewrite: %v", err)
	}
	if err := s.fs.Rename(tmp, seg.path); err != nil {
		s.fs.Remove(tmp)
		return err
	}
	if err := syncParentDir(s.fs, seg.path); err != nil {
		return err
	}
	newSeg, err := openSegment(s.fs, seg.path, seg.id)
	if err != nil {
		// The renamed file validated moments ago; treat a re-open failure
		// as fatal for the scrub (tombstones stay, lookups stay guarded).
		return err
	}
	t.cache.dropSegment(seg.id)
	t.mu.Lock()
	for i, cur := range t.segs {
		if cur.id == seg.id {
			segs := append([]*segment(nil), t.segs...)
			segs[i] = newSeg
			t.segs = segs
			break
		}
	}
	t.mu.Unlock()
	t.segmentsReclaimed.Add(1)
	return nil
}

// cleanSegmentTmp removes leftover rewrite temp files (crash between
// writeSegment and rename); the original segment files are intact.
func cleanSegmentTmp(fsys FS, dir string) {
	names, err := fsys.ReadDir(segmentsDir(dir))
	if err != nil {
		return
	}
	for _, name := range names {
		if strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".tmp") {
			fsys.Remove(segmentsDir(dir) + string(os.PathSeparator) + name)
		}
	}
}
