package store

import (
	"bufio"
	"bytes"
	"os"
	"reflect"
	"testing"
)

// FuzzDecodeRow hardens the Table-1 row decoder against arbitrary XML:
// it must never panic, and whatever decodes successfully must re-encode.
func FuzzDecodeRow(f *testing.F) {
	good, err := EncodeNode(reqNode())
	if err != nil {
		f.Fatal(err)
	}
	edge, err := EncodeEdge(relEdge())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good.ID, good.Class, good.AppID, good.XML)
	f.Add(edge.ID, edge.Class, edge.AppID, edge.XML)
	f.Add("x", "data", "A", `<ps:doc ps:id="x" ps:class="data"><ps:appID>A</ps:appID></ps:doc>`)
	f.Add("x", "galaxy", "A", "<broken")
	f.Add("", "", "", "")
	f.Fuzz(func(t *testing.T, id, class, appID, xml string) {
		n, e, err := DecodeRow(Row{ID: id, Class: class, AppID: appID, XML: xml})
		if err != nil {
			return // rejection is fine; panics are not
		}
		switch {
		case n != nil:
			if _, err := EncodeNode(n); err != nil {
				t.Fatalf("decoded node does not re-encode: %v", err)
			}
		case e != nil:
			if _, err := EncodeEdge(e); err != nil {
				t.Fatalf("decoded edge does not re-encode: %v", err)
			}
		default:
			t.Fatal("DecodeRow returned neither record nor error")
		}
	})
}

// FuzzReplayLog hardens crash recovery against arbitrary log bytes.
func FuzzReplayLog(f *testing.F) {
	f.Add([]byte(logMagic))
	f.Add([]byte("GARBAGE!"))
	f.Add([]byte{})
	payload := encodeEntry(entry{op: opPutNode, row: Row{ID: "x", Class: "data", AppID: "A", XML: "<x/>"}})
	f.Add(append([]byte(logMagic), payload...))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := writeFileHelper(dir, data); err != nil {
			t.Skip()
		}
		// Must not panic; errors and truncation are both acceptable.
		_, _ = replayLog(OSFS{}, logPath(dir), func(entry) error { return nil })
	})
}

// frameBytes builds one CRC-framed log frame for an entry.
func frameBytes(e entry) []byte {
	var buf bytes.Buffer
	w := &logWriter{buf: bufio.NewWriter(&buf)}
	if err := w.writeEntry(e); err != nil {
		panic(err)
	}
	if err := w.buf.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// hiringTraceLog builds an intact log holding a realistic hiring trace —
// a job requisition, its submitter, the submitterOf relation, an
// enrichment update and a compaction marker — as the seed corpus base.
func hiringTraceLog(tb testing.TB) []byte {
	tb.Helper()
	log := []byte(logMagic)
	add := func(op opcode, row Row, err error) {
		tb.Helper()
		if err != nil {
			tb.Fatal(err)
		}
		log = append(log, frameBytes(entry{op: op, row: row})...)
	}
	req, err := EncodeNode(mkReq("PE3", "App01", "REQ001"))
	add(opPutNode, req, err)
	person, err := EncodeNode(mkPerson("PE1", "App01", "Joe Smith"))
	add(opPutNode, person, err)
	rel, err := EncodeEdge(mkSubmitter("PE7", "App01", "PE1", "PE3"))
	add(opPutEdge, rel, err)
	log = append(log, frameBytes(entry{op: opCompactMark, gen: 1})...)
	upd, err := EncodeNode(mkReq("PE3", "App01", "REQ001-amended"))
	add(opUpdateNode, upd, err)
	return log
}

// intactPrefix scans raw log bytes exactly as recovery does and returns
// the entries of the longest intact frame prefix (markers excluded).
func intactPrefix(data []byte) []entry {
	if len(data) < len(logMagic) || string(data[:len(logMagic)]) != logMagic {
		return nil
	}
	r := bufio.NewReader(bytes.NewReader(data[len(logMagic):]))
	var out []entry
	for {
		e, _, err := readFrame(r)
		if err != nil {
			return out // io.EOF and torn frames both end the prefix
		}
		if e.op != opCompactMark {
			out = append(out, e)
		}
	}
}

// FuzzReplayPrefixConsistency drives replayLog with mutated log bytes —
// bit flips, truncations, oversized length prefixes — and asserts the two
// recovery invariants: replay never panics, and it never applies a record
// past the first corrupt frame (applied entries are exactly the longest
// intact frame prefix). It also checks the truncation is idempotent: a
// second replay of the repaired file applies the same entries and drops
// nothing.
func FuzzReplayPrefixConsistency(f *testing.F) {
	base := hiringTraceLog(f)
	f.Add(base)
	// Bit flips at header, mid-frame and tail positions.
	for _, pos := range []int{3, len(logMagic) + 2, len(base)/2 + 1, len(base) - 2} {
		mut := bytes.Clone(base)
		mut[pos] ^= 0x40
		f.Add(mut)
	}
	// Truncations mid-header and mid-payload.
	f.Add(bytes.Clone(base[:len(logMagic)+3]))
	f.Add(bytes.Clone(base[:len(base)-5]))
	// Oversized length prefix splices a garbage frame between intact ones.
	over := bytes.Clone(base[:len(logMagic)])
	over = append(over, frameBytes(entry{op: opPutNode, row: Row{ID: "a", Class: "data", AppID: "A", XML: "<a/>"}})...)
	over = append(over, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0)
	over = append(over, base[len(logMagic):]...)
	f.Add(over)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := writeFileHelper(dir, data); err != nil {
			t.Skip()
		}
		var applied []entry
		res, err := replayLog(OSFS{}, logPath(dir), func(e entry) error {
			applied = append(applied, e)
			return nil
		})
		if err != nil {
			return // bad magic / unreadable header: rejected wholesale
		}
		want := intactPrefix(data)
		if len(applied) != len(want) || !reflect.DeepEqual(applied, want) {
			t.Fatalf("replay applied %d entries, intact prefix has %d", len(applied), len(want))
		}
		// Replay repaired the file in place; a second pass must agree and
		// find nothing left to drop.
		var again []entry
		res2, err := replayLog(OSFS{}, logPath(dir), func(e entry) error {
			again = append(again, e)
			return nil
		})
		if err != nil {
			t.Fatalf("replay of repaired log failed: %v", err)
		}
		if res2.dropped != 0 {
			t.Fatalf("repaired log dropped %d more bytes (first pass dropped %d)", res2.dropped, res.dropped)
		}
		if !reflect.DeepEqual(again, applied) {
			t.Fatalf("repaired log replays %d entries, first pass applied %d", len(again), len(applied))
		}
	})
}

func writeFileHelper(dir string, data []byte) error {
	return os.WriteFile(logPath(dir), data, 0o644)
}
