package store

import (
	"os"
	"testing"
)

// FuzzDecodeRow hardens the Table-1 row decoder against arbitrary XML:
// it must never panic, and whatever decodes successfully must re-encode.
func FuzzDecodeRow(f *testing.F) {
	good, err := EncodeNode(reqNode())
	if err != nil {
		f.Fatal(err)
	}
	edge, err := EncodeEdge(relEdge())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good.ID, good.Class, good.AppID, good.XML)
	f.Add(edge.ID, edge.Class, edge.AppID, edge.XML)
	f.Add("x", "data", "A", `<ps:doc ps:id="x" ps:class="data"><ps:appID>A</ps:appID></ps:doc>`)
	f.Add("x", "galaxy", "A", "<broken")
	f.Add("", "", "", "")
	f.Fuzz(func(t *testing.T, id, class, appID, xml string) {
		n, e, err := DecodeRow(Row{ID: id, Class: class, AppID: appID, XML: xml})
		if err != nil {
			return // rejection is fine; panics are not
		}
		switch {
		case n != nil:
			if _, err := EncodeNode(n); err != nil {
				t.Fatalf("decoded node does not re-encode: %v", err)
			}
		case e != nil:
			if _, err := EncodeEdge(e); err != nil {
				t.Fatalf("decoded edge does not re-encode: %v", err)
			}
		default:
			t.Fatal("DecodeRow returned neither record nor error")
		}
	})
}

// FuzzReplayLog hardens crash recovery against arbitrary log bytes.
func FuzzReplayLog(f *testing.F) {
	f.Add([]byte(logMagic))
	f.Add([]byte("GARBAGE!"))
	f.Add([]byte{})
	payload := encodeEntry(entry{op: opPutNode, row: Row{ID: "x", Class: "data", AppID: "A", XML: "<x/>"}})
	f.Add(append([]byte(logMagic), payload...))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := writeFileHelper(dir, data); err != nil {
			t.Skip()
		}
		// Must not panic; errors and truncation are both acceptable.
		_, _ = replayLog(logPath(dir), func(entry) error { return nil })
	})
}

func writeFileHelper(dir string, data []byte) error {
	return os.WriteFile(logPath(dir), data, 0o644)
}
