package store

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/provenance"
)

// TestTraceVersionMonotonic checks the core invariant: every mutating
// commit bumps the touched trace's version by exactly one, failed commits
// leave it alone, and other traces never move.
func TestTraceVersionMonotonic(t *testing.T) {
	s := memStore(t)
	if got := s.TraceVersion("A"); got != 0 {
		t.Fatalf("fresh trace version = %d, want 0", got)
	}
	if err := s.PutNode(mkReq("r1", "A", "REQ1")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutNode(mkPerson("p1", "A", "Joe")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutEdge(mkSubmitter("e1", "A", "p1", "r1")); err != nil {
		t.Fatal(err)
	}
	if got := s.TraceVersion("A"); got != 3 {
		t.Fatalf("version after 3 commits = %d, want 3", got)
	}
	if err := s.PutNode(mkReq("r2", "B", "REQ2")); err != nil {
		t.Fatal(err)
	}
	if a, b := s.TraceVersion("A"), s.TraceVersion("B"); a != 3 || b != 1 {
		t.Fatalf("versions A=%d B=%d, want 3 and 1", a, b)
	}
	if err := s.UpdateNode(mkReq("r1", "A", "REQ1-v2")); err != nil {
		t.Fatal(err)
	}
	if got := s.TraceVersion("A"); got != 4 {
		t.Fatalf("version after update = %d, want 4", got)
	}
	// A rejected commit (duplicate node ID) must not advance the version.
	if err := s.PutNode(mkReq("r1", "A", "dup")); err == nil {
		t.Fatal("duplicate PutNode accepted")
	}
	if got := s.TraceVersion("A"); got != 4 {
		t.Fatalf("version after failed commit = %d, want 4", got)
	}
}

// TestTraceVersionRecovery proves replay reproduces the versions the
// writer observed: a recovered store answers TraceVersion identically.
func TestTraceVersionRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Model: testModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		app := fmt.Sprintf("A%d", i%2)
		if err := s.PutNode(mkReq(fmt.Sprintf("n%d", i), app, fmt.Sprintf("R%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	want := map[string]uint64{"A0": s.TraceVersion("A0"), "A1": s.TraceVersion("A1")}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir, Model: testModel(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for app, v := range want {
		if got := s2.TraceVersion(app); got != v {
			t.Fatalf("recovered version %s = %d, want %d", app, got, v)
		}
	}
}

// TestEventCarriesTraceVersion checks the change feed reports the
// post-commit version of the touched trace on every event.
func TestEventCarriesTraceVersion(t *testing.T) {
	s := memStore(t)
	sub := s.Subscribe()
	if err := s.PutNode(mkReq("r1", "A", "R1")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutNode(mkReq("r2", "B", "R2")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutNode(mkPerson("p1", "A", "Joe")); err != nil {
		t.Fatal(err)
	}
	sub.Cancel()
	want := []struct {
		app string
		ver uint64
	}{{"A", 1}, {"B", 1}, {"A", 2}}
	i := 0
	for ev := range sub.C() {
		if i >= len(want) {
			t.Fatalf("extra event %+v", ev)
		}
		if ev.AppID() != want[i].app || ev.TraceVersion != want[i].ver {
			t.Fatalf("event %d = (%s, v%d), want (%s, v%d)",
				i, ev.AppID(), ev.TraceVersion, want[i].app, want[i].ver)
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("saw %d events, want %d", i, len(want))
	}
}

// TestViewTraceAtomicSnapshot checks ViewTrace hands the callback the
// version that matches the graph it sees.
func TestViewTraceAtomicSnapshot(t *testing.T) {
	s := memStore(t)
	if err := s.PutNode(mkReq("r1", "A", "R1")); err != nil {
		t.Fatal(err)
	}
	err := s.ViewTrace("A", func(g *provenance.Graph, v uint64) error {
		if v != 1 {
			return fmt.Errorf("version in view = %d, want 1", v)
		}
		if g.Node("r1") == nil {
			return fmt.Errorf("graph missing r1 at version 1")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSubscriptionDepth exercises the backpressure counters: a consumer
// that stops reading accumulates queue depth, and draining returns the
// depth to zero while the high-water mark sticks.
func TestSubscriptionDepth(t *testing.T) {
	s := memStore(t)
	sub := s.Subscribe()
	if err := s.PutNode(mkReq("r0", "A", "R0")); err != nil {
		t.Fatal(err)
	}
	// Wait until the pump has the first event in flight (blocked on the
	// unread channel), so later writes pile up in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for sub.Depth() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("pump never picked up the first event")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 1; i <= 5; i++ {
		if err := s.PutNode(mkReq(fmt.Sprintf("r%d", i), "A", fmt.Sprintf("R%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if d := sub.Depth(); d < 5 {
		t.Fatalf("Depth = %d with 5 unconsumed writes, want >= 5", d)
	}
	if m := sub.MaxDepth(); m < 5 {
		t.Fatalf("MaxDepth = %d, want >= 5", m)
	}
	sub.Cancel()
	n := 0
	for range sub.C() {
		n++
	}
	if n != 6 {
		t.Fatalf("drained %d events, want 6", n)
	}
	if d := sub.Depth(); d != 0 {
		t.Fatalf("Depth after drain = %d, want 0", d)
	}
	if m := sub.MaxDepth(); m < 5 {
		t.Fatalf("MaxDepth after drain = %d, want >= 5", m)
	}
}

// FuzzTraceVersion drives a random operation stream against the store and
// asserts the version-counter invariant after every operation: a
// successful commit bumps exactly the touched trace by exactly one, and a
// failed commit bumps nothing.
func FuzzTraceVersion(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0, 0, 0, 12, 12, 3, 7, 255})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		s, err := Open(Options{Model: testModel(t)})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()

		apps := []string{"A", "B", "C"}
		want := make(map[string]uint64)
		reqs := make(map[string][]string)   // per-app requisition node IDs
		people := make(map[string][]string) // per-app person node IDs
		next := 0
		for _, b := range ops {
			app := apps[int(b>>4)%len(apps)]
			switch b % 5 {
			case 0: // insert a requisition
				id := fmt.Sprintf("n%d", next)
				next++
				if err := s.PutNode(mkReq(id, app, "R-"+id)); err != nil {
					t.Fatalf("PutNode %s: %v", id, err)
				}
				want[app]++
				reqs[app] = append(reqs[app], id)
			case 1: // insert a person
				id := fmt.Sprintf("p%d", next)
				next++
				if err := s.PutNode(mkPerson(id, app, "P-"+id)); err != nil {
					t.Fatalf("PutNode %s: %v", id, err)
				}
				want[app]++
				people[app] = append(people[app], id)
			case 2: // update an existing requisition, when one exists
				if ids := reqs[app]; len(ids) > 0 {
					id := ids[int(b)%len(ids)]
					if err := s.UpdateNode(mkReq(id, app, fmt.Sprintf("R2-%d", b))); err != nil {
						t.Fatalf("UpdateNode %s: %v", id, err)
					}
					want[app]++
				}
			case 3: // link a person to a requisition, when both exist
				if len(reqs[app]) > 0 && len(people[app]) > 0 {
					id := fmt.Sprintf("e%d", next)
					next++
					src := people[app][int(b)%len(people[app])]
					dst := reqs[app][int(b)%len(reqs[app])]
					if err := s.PutEdge(mkSubmitter(id, app, src, dst)); err != nil {
						t.Fatalf("PutEdge %s: %v", id, err)
					}
					want[app]++
				}
			case 4: // duplicate insert must fail and must not bump
				if ids := reqs[app]; len(ids) > 0 {
					if err := s.PutNode(mkReq(ids[0], app, "dup")); err == nil {
						t.Fatalf("duplicate PutNode %s accepted", ids[0])
					}
				}
			}
			for _, a := range apps {
				if got := s.TraceVersion(a); got != want[a] {
					t.Fatalf("TraceVersion(%s) = %d, want %d (op byte %d)", a, got, want[a], b)
				}
			}
		}
	})
}
