package store

import (
	"sync"

	"repro/internal/provenance"
)

// EventKind distinguishes the mutations the change feed reports.
type EventKind int

const (
	// EventNode reports a newly inserted node record.
	EventNode EventKind = iota + 1
	// EventNodeUpdate reports an enrichment of an existing node.
	EventNodeUpdate
	// EventEdge reports a newly inserted relation record.
	EventEdge
)

// String names the kind for diagnostics.
func (k EventKind) String() string {
	switch k {
	case EventNode:
		return "node"
	case EventNodeUpdate:
		return "node-update"
	case EventEdge:
		return "edge"
	default:
		return "invalid"
	}
}

// Event is one change-feed notification. Exactly one of Node or Edge is
// set, according to Kind. Records are clones: consumers may retain them.
type Event struct {
	Kind EventKind
	Seq  uint64
	// TraceVersion is the touched trace's monotonic version immediately
	// after this commit (zero when the record carries no trace ID).
	TraceVersion uint64
	Node         *provenance.Node
	Edge         *provenance.Edge
	// Prev is the node's pre-image on EventNodeUpdate (nil otherwise):
	// delta-driven control evaluation tests access-plan prefilters against
	// both the old and the new attributes, so an update that neither was
	// nor becomes a binder candidate is provably unable to affect it.
	Prev *provenance.Node
}

// AppID returns the trace the changed record belongs to.
func (e Event) AppID() string {
	if e.Node != nil {
		return e.Node.AppID
	}
	if e.Edge != nil {
		return e.Edge.AppID
	}
	return ""
}

// Subscription is a change-feed consumer. Events are queued without bound
// between the store's commit path and the consumer, so a slow consumer
// never blocks writers and never loses events — the property continuous
// compliance checking (experiment E6) depends on.
type Subscription struct {
	ch       chan Event
	mu       sync.Mutex
	cond     *sync.Cond
	q        []Event
	maxDepth int
	done     bool
	cancel   func()
}

// Subscribe registers a change-feed consumer. Events committed after the
// call are delivered in commit order on C. Call Cancel when finished.
func (s *Store) Subscribe() *Subscription {
	sub := &Subscription{ch: make(chan Event)}
	sub.cond = sync.NewCond(&sub.mu)
	go sub.pump()

	s.subMu.Lock()
	id := s.nextSub
	s.nextSub++
	s.subs[id] = sub
	s.subMu.Unlock()

	// Cancel removes the subscription from the store; stored as a closure
	// field to keep Subscription decoupled from Store.
	sub.cancel = func() {
		s.subMu.Lock()
		delete(s.subs, id)
		s.subMu.Unlock()
		sub.stop()
	}
	return sub
}

// C returns the event channel. It is closed after Cancel (or store Close)
// once every queued event has been delivered.
func (sub *Subscription) C() <-chan Event { return sub.ch }

// Cancel detaches the subscription. Pending events are still delivered,
// then C is closed.
func (sub *Subscription) Cancel() {
	if sub.cancel != nil {
		sub.cancel()
	}
}

// Depth reports the number of events queued behind the consumer right
// now — the backpressure signal a continuous checker surfaces in its
// stats so an overwhelmed deployment is visible before memory is.
func (sub *Subscription) Depth() int {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return len(sub.q)
}

// MaxDepth reports the high-water mark of the queue since Subscribe.
func (sub *Subscription) MaxDepth() int {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.maxDepth
}

func (sub *Subscription) enqueue(e Event) {
	sub.mu.Lock()
	if !sub.done {
		sub.q = append(sub.q, e)
		if len(sub.q) > sub.maxDepth {
			sub.maxDepth = len(sub.q)
		}
		sub.cond.Signal()
	}
	sub.mu.Unlock()
}

func (sub *Subscription) stop() {
	sub.mu.Lock()
	if !sub.done {
		sub.done = true
		sub.cond.Signal()
	}
	sub.mu.Unlock()
}

// pump drains the queue to the channel, preserving order.
func (sub *Subscription) pump() {
	for {
		sub.mu.Lock()
		for len(sub.q) == 0 && !sub.done {
			sub.cond.Wait()
		}
		if len(sub.q) == 0 && sub.done {
			sub.mu.Unlock()
			close(sub.ch)
			return
		}
		batch := sub.q
		sub.q = nil
		sub.mu.Unlock()
		for _, e := range batch {
			sub.ch <- e
		}
	}
}

// publish clones the event payload and fans it out to every subscriber.
func (s *Store) publish(e Event) {
	if e.Node != nil {
		e.Node = e.Node.Clone()
	}
	if e.Edge != nil {
		e.Edge = e.Edge.Clone()
	}
	if e.Prev != nil {
		e.Prev = e.Prev.Clone()
	}
	s.subMu.Lock()
	for _, sub := range s.subs {
		sub.enqueue(e)
	}
	s.subMu.Unlock()
}
