package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The disk log is a sequence of frames following an 8-byte magic header.
// Each frame is:
//
//	uint32 length of payload (little endian)
//	uint32 CRC-32 (IEEE) of payload
//	payload bytes
//
// A payload is one log entry: a one-byte opcode followed by the four
// length-prefixed row columns (ID, CLASS, APPID, XML), or — for the
// compaction marker — an 8-byte generation number. Torn or corrupt tails
// are detected by the CRC/length checks and truncated on recovery, so a
// crash mid-append loses at most the records of the batch being written.
//
// The log can span multiple files. Steady state is a single main file
// (provenance.log). During a compaction, appends are redirected to a side
// file (provenance.log.side.<gen>); the rewritten main log begins with a
// marker frame recording the side generation it folded in, which is how
// recovery decides whether a surviving side file is stale (already folded)
// or carries appends the main log does not have. See Store.Compact.

const logMagic = "PROVLOG1"

// opcode identifies the mutation a log entry carries.
type opcode byte

const (
	opPutNode opcode = iota + 1
	opPutEdge
	opUpdateNode
	// opCompactMark is a compaction watermark: every side-log generation
	// up to and including its value is folded into the frames that follow.
	opCompactMark
	// opTraceVer pins one trace's version counter. Promotion re-logs a
	// sealed trace's base rows followed by this entry so replay rebuilds
	// the trace at exactly the version it was sealed at; per-row replays
	// alone would restart the counter from the row count.
	opTraceVer
	// opTraceDrop is a trace tombstone: shard handoff commits one after
	// the trace's rows were shipped to their new owner, so replay removes
	// the trace instead of resurrecting it. gen carries the drop's
	// sequence so the tier can tell pre-drop sealed copies (scrubbed)
	// from post-drop re-imports (kept). Tombstones disappear at the next
	// compaction, whose rewrite is built from the already-dropped state.
	opTraceDrop
)

var errTornFrame = errors.New("store: torn or corrupt log frame")

// entry is one decoded log record. gen is meaningful only for
// opCompactMark entries.
type entry struct {
	op  opcode
	row Row
	gen uint64
}

func encodeEntry(e entry) []byte {
	if e.op == opCompactMark {
		buf := make([]byte, 9)
		buf[0] = byte(e.op)
		binary.LittleEndian.PutUint64(buf[1:], e.gen)
		return buf
	}
	if e.op == opTraceVer || e.op == opTraceDrop {
		// op + version/seq (reusing gen) + length-prefixed trace ID.
		buf := make([]byte, 0, 13+len(e.row.AppID))
		buf = append(buf, byte(e.op))
		var verb [8]byte
		binary.LittleEndian.PutUint64(verb[:], e.gen)
		buf = append(buf, verb[:]...)
		var lenb [4]byte
		binary.LittleEndian.PutUint32(lenb[:], uint32(len(e.row.AppID)))
		buf = append(buf, lenb[:]...)
		buf = append(buf, e.row.AppID...)
		return buf
	}
	cols := [4]string{e.row.ID, e.row.Class, e.row.AppID, e.row.XML}
	size := 1
	for _, c := range cols {
		size += 4 + len(c)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, byte(e.op))
	for _, c := range cols {
		var lenb [4]byte
		binary.LittleEndian.PutUint32(lenb[:], uint32(len(c)))
		buf = append(buf, lenb[:]...)
		buf = append(buf, c...)
	}
	return buf
}

func decodeEntry(payload []byte) (entry, error) {
	if len(payload) < 1 {
		return entry{}, fmt.Errorf("store: empty log payload")
	}
	e := entry{op: opcode(payload[0])}
	if e.op == opCompactMark {
		if len(payload) != 9 {
			return entry{}, fmt.Errorf("store: compact marker payload is %d bytes", len(payload))
		}
		e.gen = binary.LittleEndian.Uint64(payload[1:])
		return e, nil
	}
	if e.op == opTraceVer || e.op == opTraceDrop {
		if len(payload) < 13 {
			return entry{}, fmt.Errorf("store: trace-version payload is %d bytes", len(payload))
		}
		e.gen = binary.LittleEndian.Uint64(payload[1:9])
		n := binary.LittleEndian.Uint32(payload[9:13])
		if uint32(len(payload)-13) != n {
			return entry{}, fmt.Errorf("store: trace-version payload length mismatch")
		}
		e.row.AppID = string(payload[13:])
		return e, nil
	}
	if e.op != opPutNode && e.op != opPutEdge && e.op != opUpdateNode {
		return entry{}, fmt.Errorf("store: unknown log opcode %d", payload[0])
	}
	rest := payload[1:]
	var cols [4]string
	for i := range cols {
		if len(rest) < 4 {
			return entry{}, fmt.Errorf("store: truncated log payload")
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		rest = rest[4:]
		if uint32(len(rest)) < n {
			return entry{}, fmt.Errorf("store: truncated log column")
		}
		cols[i] = string(rest[:n])
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return entry{}, fmt.Errorf("store: %d trailing bytes in log payload", len(rest))
	}
	e.row = Row{ID: cols[0], Class: cols[1], AppID: cols[2], XML: cols[3]}
	return e, nil
}

// logWriter appends frames to one log file. It is not safe for concurrent
// use; the store serializes access under logMu.
type logWriter struct {
	fs   FS
	path string
	f    File
	buf  *bufio.Writer
	// sync records whether the store demands fsync durability. The group
	// committer decides when to call syncFile; close consults it too.
	sync bool
}

func createOrOpenLog(fsys FS, path string, sync bool) (*logWriter, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if _, err := f.Write([]byte(logMagic)); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &logWriter{fs: fsys, path: path, f: f, buf: bufio.NewWriter(f), sync: sync}, nil
}

// writeEntry buffers one frame. Nothing reaches the file (let alone the
// disk) until flush; the group committer amortizes flush+fsync over a
// batch of entries.
func (w *logWriter) writeEntry(e entry) error {
	payload := encodeEntry(e)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.buf.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.buf.Write(payload)
	return err
}

func (w *logWriter) flush() error { return w.buf.Flush() }

func (w *logWriter) syncFile() error { return w.f.Sync() }

// append writes one frame and flushes it, fsyncing when the writer is in
// sync mode. It is the non-batched path: compaction rewrites and stores
// with group commit disabled.
func (w *logWriter) append(e entry) error {
	if err := w.writeEntry(e); err != nil {
		return err
	}
	if err := w.flush(); err != nil {
		return err
	}
	if w.sync {
		return w.syncFile()
	}
	return nil
}

// close flushes, fsyncs (only when the store demanded sync durability)
// and closes the file. Error reporting is deterministic: every step runs
// regardless of earlier failures except that a failed flush skips the
// fsync (the file is known incomplete, syncing it certifies nothing), and
// the first error in flush -> sync -> close order is returned.
func (w *logWriter) close() error {
	flushErr := w.flush()
	var syncErr error
	if w.sync && flushErr == nil {
		syncErr = w.syncFile()
	}
	closeErr := w.f.Close()
	switch {
	case flushErr != nil:
		return flushErr
	case syncErr != nil:
		return syncErr
	default:
		return closeErr
	}
}

// replayResult summarizes one log file's replay.
type replayResult struct {
	// dropped is the number of torn-tail bytes truncated away.
	dropped int64
	// folded is the highest compaction-marker generation seen: side logs
	// with generations at or below it are already folded into this file.
	folded uint64
	// applied counts entries handed to apply successfully.
	applied int
	// skipped counts entries whose apply failed. The writer rejected the
	// same entries when they were first committed (apply is deterministic
	// in the preceding state), so skipping reproduces its state exactly.
	skipped int
}

// replayLog reads every intact entry from the log file at path. When the
// tail is torn or corrupt it truncates the file to the last intact frame
// and reports how many bytes were dropped. A missing file replays
// nothing. Entries that fail to apply are skipped, not fatal: the writer
// that produced the log also failed to apply them (append happens before
// apply), so a poisoned entry must not brick recovery.
func replayLog(fsys FS, path string, apply func(entry) error) (replayResult, error) {
	var res replayResult
	f, err := fsys.Open(path)
	if os.IsNotExist(err) {
		return res, nil
	}
	if err != nil {
		return res, err
	}
	defer f.Close()

	r := bufio.NewReader(f)
	magic := make([]byte, len(logMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		if err == io.EOF {
			return res, nil // empty file: nothing to replay
		}
		if err == io.ErrUnexpectedEOF {
			// Torn magic: the crash hit before the header completed, so no
			// frame can follow. Reset the file so reopening recreates it.
			st, serr := f.Stat()
			if serr != nil {
				return res, serr
			}
			res.dropped = st.Size()
			f.Close()
			if terr := fsys.Truncate(path, 0); terr != nil {
				return res, fmt.Errorf("store: truncating torn log header: %v", terr)
			}
			return res, nil
		}
		return res, fmt.Errorf("store: reading log header: %v", err)
	}
	if string(magic) != logMagic {
		return res, fmt.Errorf("store: %s is not a provenance log (bad magic)", path)
	}

	good := int64(len(logMagic))
	for {
		e, frameLen, rerr := readFrame(r)
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			// Torn tail: truncate to the last intact frame.
			st, serr := f.Stat()
			if serr != nil {
				return res, serr
			}
			res.dropped = st.Size() - good
			f.Close()
			if terr := fsys.Truncate(path, good); terr != nil {
				return res, fmt.Errorf("store: truncating torn log: %v", terr)
			}
			return res, nil
		}
		if e.op == opCompactMark {
			if e.gen > res.folded {
				res.folded = e.gen
			}
		} else if aerr := apply(e); aerr != nil {
			res.skipped++
		} else {
			res.applied++
		}
		good += frameLen
	}
	return res, nil
}

// readFrame reads one frame. io.EOF means a clean end; any other error
// means a torn or corrupt frame.
func readFrame(r *bufio.Reader) (entry, int64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return entry{}, 0, io.EOF
		}
		return entry{}, 0, errTornFrame
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	const maxFrame = 64 << 20 // defensive bound against garbage lengths
	if n == 0 || n > maxFrame {
		return entry{}, 0, errTornFrame
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return entry{}, 0, errTornFrame
	}
	if crc32.ChecksumIEEE(payload) != want {
		return entry{}, 0, errTornFrame
	}
	e, err := decodeEntry(payload)
	if err != nil {
		return entry{}, 0, errTornFrame
	}
	return e, int64(8 + n), nil
}

// logPath returns the main log file path inside dir.
func logPath(dir string) string { return filepath.Join(dir, "provenance.log") }

// tmpLogPath is the scratch file a compaction snapshot is written to
// before the atomic rename; a leftover one is garbage from a crashed
// compaction and is removed at Open.
func tmpLogPath(dir string) string { return logPath(dir) + ".tmp" }

// sideLogPath names the side log of one compaction generation.
func sideLogPath(dir string, gen uint64) string {
	return fmt.Sprintf("%s.side.%d", logPath(dir), gen)
}

// sideLogGens lists the side-log generations present in dir, ascending.
func sideLogGens(fsys FS, dir string) ([]uint64, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	prefix := filepath.Base(logPath(dir)) + ".side."
	var gens []uint64
	for _, name := range names {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		gen, err := strconv.ParseUint(strings.TrimPrefix(name, prefix), 10, 64)
		if err != nil {
			continue // not ours
		}
		gens = append(gens, gen)
	}
	for i := 1; i < len(gens); i++ {
		for j := i; j > 0 && gens[j] < gens[j-1]; j-- {
			gens[j], gens[j-1] = gens[j-1], gens[j]
		}
	}
	return gens, nil
}

// copyFrames streams every byte after the magic header of the log file at
// src into w's buffer. Used by compaction to fold a side log into the
// snapshot; the frames are already CRC-framed so they are copied verbatim.
func copyFrames(fsys FS, src string, w *logWriter) error {
	f, err := fsys.Open(src)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr := make([]byte, len(logMagic))
	if _, err := io.ReadFull(f, hdr); err != nil {
		if err == io.EOF {
			return nil // empty side log: nothing to fold
		}
		return err
	}
	if string(hdr) != logMagic {
		return fmt.Errorf("store: %s is not a provenance log (bad magic)", src)
	}
	_, err = io.Copy(w.buf, f)
	return err
}
