package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// The disk log is a sequence of frames following an 8-byte magic header.
// Each frame is:
//
//	uint32 length of payload (little endian)
//	uint32 CRC-32 (IEEE) of payload
//	payload bytes
//
// A payload is one log entry: a one-byte opcode followed by the four
// length-prefixed row columns (ID, CLASS, APPID, XML). Torn or corrupt
// tails are detected by the CRC/length checks and truncated on recovery,
// so a crash mid-append loses at most the record being written.

const logMagic = "PROVLOG1"

// opcode identifies the mutation a log entry carries.
type opcode byte

const (
	opPutNode opcode = iota + 1
	opPutEdge
	opUpdateNode
)

var errTornFrame = errors.New("store: torn or corrupt log frame")

// entry is one decoded log record.
type entry struct {
	op  opcode
	row Row
}

func encodeEntry(e entry) []byte {
	cols := [4]string{e.row.ID, e.row.Class, e.row.AppID, e.row.XML}
	size := 1
	for _, c := range cols {
		size += 4 + len(c)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, byte(e.op))
	for _, c := range cols {
		var lenb [4]byte
		binary.LittleEndian.PutUint32(lenb[:], uint32(len(c)))
		buf = append(buf, lenb[:]...)
		buf = append(buf, c...)
	}
	return buf
}

func decodeEntry(payload []byte) (entry, error) {
	if len(payload) < 1 {
		return entry{}, fmt.Errorf("store: empty log payload")
	}
	e := entry{op: opcode(payload[0])}
	if e.op != opPutNode && e.op != opPutEdge && e.op != opUpdateNode {
		return entry{}, fmt.Errorf("store: unknown log opcode %d", payload[0])
	}
	rest := payload[1:]
	var cols [4]string
	for i := range cols {
		if len(rest) < 4 {
			return entry{}, fmt.Errorf("store: truncated log payload")
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		rest = rest[4:]
		if uint32(len(rest)) < n {
			return entry{}, fmt.Errorf("store: truncated log column")
		}
		cols[i] = string(rest[:n])
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return entry{}, fmt.Errorf("store: %d trailing bytes in log payload", len(rest))
	}
	e.row = Row{ID: cols[0], Class: cols[1], AppID: cols[2], XML: cols[3]}
	return e, nil
}

// logWriter appends frames to the log file.
type logWriter struct {
	f   *os.File
	buf *bufio.Writer
	// sync forces an fsync after every append when true.
	sync bool
}

func createOrOpenLog(path string, sync bool) (*logWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if _, err := f.Write([]byte(logMagic)); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &logWriter{f: f, buf: bufio.NewWriter(f), sync: sync}, nil
}

func (w *logWriter) append(e entry) error {
	payload := encodeEntry(e)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.buf.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.buf.Write(payload); err != nil {
		return err
	}
	if err := w.buf.Flush(); err != nil {
		return err
	}
	if w.sync {
		return w.f.Sync()
	}
	return nil
}

func (w *logWriter) close() error {
	if err := w.buf.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// replayLog reads every intact entry from the log file at path. When the
// tail is torn or corrupt it truncates the file to the last intact frame
// and reports how many bytes were dropped. A missing file replays nothing.
func replayLog(path string, apply func(entry) error) (dropped int64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()

	r := bufio.NewReader(f)
	magic := make([]byte, len(logMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		if err == io.EOF {
			return 0, nil // empty file: nothing to replay
		}
		return 0, fmt.Errorf("store: reading log header: %v", err)
	}
	if string(magic) != logMagic {
		return 0, fmt.Errorf("store: %s is not a provenance log (bad magic)", path)
	}

	good := int64(len(logMagic))
	for {
		e, frameLen, rerr := readFrame(r)
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			// Torn tail: truncate to the last intact frame.
			st, serr := f.Stat()
			if serr != nil {
				return 0, serr
			}
			dropped = st.Size() - good
			f.Close()
			if terr := os.Truncate(path, good); terr != nil {
				return dropped, fmt.Errorf("store: truncating torn log: %v", terr)
			}
			return dropped, nil
		}
		if aerr := apply(e); aerr != nil {
			return 0, fmt.Errorf("store: replaying %s: %v", path, aerr)
		}
		good += frameLen
	}
	return 0, nil
}

// readFrame reads one frame. io.EOF means a clean end; any other error
// means a torn or corrupt frame.
func readFrame(r *bufio.Reader) (entry, int64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return entry{}, 0, io.EOF
		}
		return entry{}, 0, errTornFrame
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	const maxFrame = 64 << 20 // defensive bound against garbage lengths
	if n == 0 || n > maxFrame {
		return entry{}, 0, errTornFrame
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return entry{}, 0, errTornFrame
	}
	if crc32.ChecksumIEEE(payload) != want {
		return entry{}, 0, errTornFrame
	}
	e, err := decodeEntry(payload)
	if err != nil {
		return entry{}, 0, errTornFrame
	}
	return e, int64(8 + n), nil
}

// logPath returns the log file path inside dir.
func logPath(dir string) string { return filepath.Join(dir, "provenance.log") }
