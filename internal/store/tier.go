package store

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/provenance"
)

// tierManager owns the cold tier: the set of sealed segments on disk plus
// the block cache fronting them. Segments are immutable once registered,
// so the only lock is around the segment list itself; probing, paging and
// materialization all run lock-free against immutable state.
//
// Lookups go newest-first. A trace demoted, promoted back, and demoted
// again exists in two segments; the newer segment always carries the
// newer copy, so newest-first resolves supersession with no tombstone
// bookkeeping. The zone map (trace-ID range) and the trace bloom filter
// gate each probe, so a cold lookup touches at most one segment plus the
// bloom's false-positive tail — the invariant E15 verifies by counters:
// SegmentProbes == ColdHits + FalseProbes.
type tierManager struct {
	fs    FS
	dir   string
	cache *blockCache

	mu     sync.RWMutex
	segs   []*segment // ascending by id
	nextID uint64
	// dropped maps trace ID -> drop sequence for traces tombstoned by
	// shard handoff whose sealed copies have not been scrubbed out of
	// their segments yet. Lookups treat a sealed copy from a segment
	// sealed at or before the drop as dead; scrubDropped clears entries
	// once the copies are physically gone. Rebuilt from the log's
	// opTraceDrop tombstones at Open.
	dropped map[string]uint64

	// removedAtOpen counts half-sealed segment files deleted during load:
	// a crash mid-seal leaves a file without a valid trailer/footer, and
	// the log still holds every row it would have carried.
	removedAtOpen int

	coldLookups   atomic.Uint64
	coldHits      atomic.Uint64
	segmentProbes atomic.Uint64
	bloomSkips    atomic.Uint64
	falseProbes   atomic.Uint64
	demoted       atomic.Uint64
	promoted      atomic.Uint64
	// segmentsReclaimed counts sealed files deleted by segment GC —
	// every trace they held was promoted back to hot, superseded by a
	// newer segment, or dropped by shard handoff.
	segmentsReclaimed atomic.Uint64
}

// newTierManager scans dir's segments directory, validates every segment
// file, removes half-sealed garbage, and returns the manager.
func newTierManager(fsys FS, dir string, cacheBytes int64) (*tierManager, error) {
	if err := os.MkdirAll(segmentsDir(dir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %v", err)
	}
	t := &tierManager{fs: fsys, dir: dir, cache: newBlockCache(cacheBytes), nextID: 1}
	// A crash between a scrub rewrite and its rename leaves a .tmp next
	// to the intact original; it is garbage.
	cleanSegmentTmp(fsys, dir)
	ids, err := segmentIDs(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing segments: %v", err)
	}
	for _, id := range ids {
		path := segmentPath(dir, id)
		seg, err := openSegment(fsys, path, id)
		if err != nil {
			// Half-sealed or corrupt: the compaction that wrote it never
			// committed its rename, so the log still holds these traces.
			if rerr := fsys.Remove(path); rerr != nil && !os.IsNotExist(rerr) {
				return nil, fmt.Errorf("store: removing invalid segment: %v", rerr)
			}
			t.removedAtOpen++
			continue
		}
		t.segs = append(t.segs, seg)
		if id >= t.nextID {
			t.nextID = id + 1
		}
	}
	return t, nil
}

// allocID reserves the next segment ID.
func (t *tierManager) allocID() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextID
	t.nextID++
	return id
}

// register adds a sealed, fsynced segment to the lookup set.
func (t *tierManager) register(seg *segment) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.segs = append(t.segs, seg)
	sort.Slice(t.segs, func(i, j int) bool { return t.segs[i].id < t.segs[j].id })
}

// unregister removes a segment from the lookup set (GC or handoff scrub).
// The caller deletes the file; readers holding the previous segment list
// degrade to a false probe on it, which lookup paths already tolerate.
func (t *tierManager) unregister(id uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, s := range t.segs {
		if s.id == id {
			t.segs = append(append([]*segment(nil), t.segs[:i]...), t.segs[i+1:]...)
			return
		}
	}
}

// markDropped records a handoff tombstone: sealed copies of app in
// segments sealed at or before seq are dead. Cleared by scrubDropped.
func (t *tierManager) markDropped(app string, seq uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dropped == nil {
		t.dropped = map[string]uint64{}
	}
	t.dropped[app] = seq
}

// droppedAt returns the pending drop sequence for app (0 = not dropped).
func (t *tierManager) droppedAt(app string) uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.dropped[app]
}

// pendingDrops snapshots the tombstone set.
func (t *tierManager) pendingDrops() map[string]uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[string]uint64, len(t.dropped))
	for k, v := range t.dropped {
		out[k] = v
	}
	return out
}

// clearDrops forgets tombstones whose sealed copies were scrubbed.
func (t *tierManager) clearDrops(apps []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, a := range apps {
		delete(t.dropped, a)
	}
}

// hasSegments reports whether the cold tier holds anything — the cheap
// gate read paths consult before paying a lookup.
func (t *tierManager) hasSegments() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.segs) > 0
}

// snapshotSegs returns the current segment list (shared, immutable).
func (t *tierManager) snapshotSegs() []*segment {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.segs
}

// footer returns a segment's parsed footer through the cache.
func (t *tierManager) footer(seg *segment) (*segFooter, error) {
	key := cacheKey{seg: seg.id, blk: cacheFooter}
	if v, ok := t.cache.get(key); ok {
		return v.(*segFooter), nil
	}
	ft, err := seg.readFooter()
	if err != nil {
		return nil, err
	}
	t.cache.put(key, ft, footerSize(ft))
	return ft, nil
}

// block returns a decoded data block through the cache.
func (t *tierManager) block(seg *segment, ft *segFooter, blk int) ([]entry, error) {
	key := cacheKey{seg: seg.id, blk: blk}
	if v, ok := t.cache.get(key); ok {
		return v.([]entry), nil
	}
	es, err := seg.readBlock(ft, blk)
	if err != nil {
		return nil, err
	}
	t.cache.put(key, es, entriesSize(es))
	return es, nil
}

// lookupTrace finds the newest sealed copy of a trace. maxSeq, when
// non-zero, bounds the copy's last-touch sequence — the as-of read path.
func (t *tierManager) lookupTrace(app string, maxSeq uint64) (*segment, segTrace, bool) {
	t.coldLookups.Add(1)
	dropSeq := t.droppedAt(app)
	segs := t.snapshotSegs()
	for i := len(segs) - 1; i >= 0; i-- {
		seg := segs[i]
		if dropSeq != 0 && seg.sealSeq <= dropSeq {
			// Sealed before the trace's handoff tombstone: the copy is
			// dead even though the scrub hasn't rewritten the file yet.
			t.bloomSkips.Add(1)
			continue
		}
		if app < seg.minApp || app > seg.maxApp || !seg.bloomTrace.mightContain(app) {
			t.bloomSkips.Add(1)
			continue
		}
		if maxSeq != 0 && seg.minSeq > maxSeq {
			t.bloomSkips.Add(1)
			continue
		}
		t.segmentProbes.Add(1)
		ft, err := t.footer(seg)
		if err != nil {
			t.falseProbes.Add(1)
			continue // validated at open; a read error now degrades to a miss
		}
		tr, ok := ft.findTrace(app)
		if !ok || (maxSeq != 0 && tr.Last > maxSeq) {
			t.falseProbes.Add(1)
			continue
		}
		t.coldHits.Add(1)
		return seg, tr, true
	}
	return nil, segTrace{}, false
}

// ownerOf resolves a raw record ID to the trace that owns it by probing
// the segments' row-ID bloom filters, newest-first. It is the routing
// path for ID-based cold reads when the hot tier's record-ID router has
// no entry — always the case after a restart, and after demotion evicts
// the trace's entries. A bloom hit scans the segment's data blocks
// through the cache; record IDs are write-once, so the first segment
// that truly holds the ID names the owning trace for every copy.
func (t *tierManager) ownerOf(id string) (string, bool) {
	t.coldLookups.Add(1)
	segs := t.snapshotSegs()
	for i := len(segs) - 1; i >= 0; i-- {
		seg := segs[i]
		if seg.bloomID != nil && !seg.bloomID.mightContain(id) {
			t.bloomSkips.Add(1)
			continue
		}
		t.segmentProbes.Add(1)
		ft, err := t.footer(seg)
		if err != nil {
			t.falseProbes.Add(1)
			continue
		}
		for blk := 0; blk < len(ft.Blocks); blk++ {
			es, err := t.block(seg, ft, blk)
			if err != nil {
				break
			}
			for _, e := range es {
				if e.row.ID == id {
					if ds := t.droppedAt(e.row.AppID); ds != 0 && seg.sealSeq <= ds {
						// Newest copy predates the trace's handoff
						// tombstone — every older copy does too.
						return "", false
					}
					t.coldHits.Add(1)
					return e.row.AppID, true
				}
			}
		}
		t.falseProbes.Add(1) // bloom false positive (or unreadable block)
	}
	return "", false
}

// traceRows pages the trace's rows out of its sealed block.
func (t *tierManager) traceRows(seg *segment, tr segTrace) ([]entry, error) {
	ft, err := t.footer(seg)
	if err != nil {
		return nil, err
	}
	all, err := t.block(seg, ft, tr.Blk)
	if err != nil {
		return nil, err
	}
	rows := make([]entry, 0, tr.Rows)
	for _, e := range all {
		if e.row.AppID == tr.App {
			rows = append(rows, e)
		}
	}
	return rows, nil
}

// decodeTrace turns sealed rows back into records, nodes first.
func decodeTrace(rows []entry) ([]*provenance.Node, []*provenance.Edge, error) {
	var nodes []*provenance.Node
	var edges []*provenance.Edge
	for _, e := range rows {
		n, ed, err := DecodeRow(e.row)
		if err != nil {
			return nil, nil, fmt.Errorf("store: sealed row %s: %w", e.row.ID, err)
		}
		switch {
		case n != nil:
			nodes = append(nodes, n)
		case ed != nil:
			edges = append(edges, ed)
		default:
			return nil, nil, fmt.Errorf("store: sealed row %s decoded to nothing", e.row.ID)
		}
	}
	return nodes, edges, nil
}

// materialize builds (or returns from cache) the frozen read-only graph
// of one sealed trace copy. The graph has its own router and shares
// nothing with the hot tier, so it never blocks writers and may be
// retained indefinitely like any snapshot.
func (t *tierManager) materialize(seg *segment, tr segTrace) (*provenance.Graph, error) {
	key := cacheKey{seg: seg.id, blk: cacheTrace, app: tr.App}
	if v, ok := t.cache.get(key); ok {
		return v.(*provenance.Graph), nil
	}
	rows, err := t.traceRows(seg, tr)
	if err != nil {
		return nil, err
	}
	nodes, edges, err := decodeTrace(rows)
	if err != nil {
		return nil, err
	}
	g := provenance.NewGraph()
	if err := g.RestoreTrace(tr.App, nodes, edges, tr.Ver); err != nil {
		return nil, err
	}
	frozen := g.Snapshot()
	t.cache.put(key, frozen, entriesSize(rows)*2)
	return frozen, nil
}

// apps returns every trace ID sealed in the tier (deduplicated across
// segments). It reads each segment's footer through the cache; callers
// are listing endpoints, not hot paths.
func (t *tierManager) apps() ([]string, error) {
	seen := map[string]bool{}
	for _, seg := range t.snapshotSegs() {
		ft, err := t.footer(seg)
		if err != nil {
			return nil, err
		}
		for _, tr := range ft.Traces {
			seen[tr.App] = true
		}
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// SegmentInfo describes one sealed segment for operators (pctl segments,
// the /segments endpoint).
type SegmentInfo struct {
	ID        uint64  `json:"id"`
	Path      string  `json:"path"`
	SizeBytes int64   `json:"size_bytes"`
	Traces    int     `json:"traces"`
	Rows      int     `json:"rows"`
	Blocks    int     `json:"blocks"`
	SealSeq   uint64  `json:"seal_seq"`
	MinSeq    uint64  `json:"min_seq"`
	MaxSeq    uint64  `json:"max_seq"`
	MinApp    string  `json:"min_app"`
	MaxApp    string  `json:"max_app"`
	BloomFill float64 `json:"bloom_fill"`
	BloomFPP  float64 `json:"bloom_fpp"`
}

// segments lists the sealed segments, ascending by ID.
func (t *tierManager) segments() []SegmentInfo {
	segs := t.snapshotSegs()
	out := make([]SegmentInfo, 0, len(segs))
	for _, s := range segs {
		out = append(out, SegmentInfo{
			ID: s.id, Path: s.path, SizeBytes: s.size,
			Traces: s.nTraces, Rows: s.nRows, Blocks: s.nBlocks,
			SealSeq: s.sealSeq, MinSeq: s.minSeq, MaxSeq: s.maxSeq,
			MinApp: s.minApp, MaxApp: s.maxApp,
			BloomFill: s.bloomTrace.fillRatio(), BloomFPP: s.bloomTrace.estFPP(),
		})
	}
	return out
}

// TieringStats is the tiered-storage layer's observable state, served
// under "tiering" in the HTTP /stats endpoint.
type TieringStats struct {
	// Enabled is false when tiering is off (ablation D12 or in-memory).
	Enabled bool `json:"enabled"`
	// Segments / SealedTraces / SealedRows / SealedBytes describe the
	// cold tier's extent.
	Segments     int   `json:"segments"`
	SealedTraces int   `json:"sealed_traces"`
	SealedRows   int   `json:"sealed_rows"`
	SealedBytes  int64 `json:"sealed_bytes"`
	// ResidentTraces counts hot-tier trace shards; DemotedTraces and
	// PromotedTraces are lifetime movement counters.
	ResidentTraces int    `json:"resident_traces"`
	DemotedTraces  uint64 `json:"demoted_traces"`
	PromotedTraces uint64 `json:"promoted_traces"`
	// ColdLookups / ColdHits / SegmentProbes / BloomSkips / FalseProbes
	// verify the one-probe-per-lookup promise:
	// SegmentProbes == ColdHits + FalseProbes.
	ColdLookups   uint64 `json:"cold_lookups"`
	ColdHits      uint64 `json:"cold_hits"`
	SegmentProbes uint64 `json:"segment_probes"`
	BloomSkips    uint64 `json:"bloom_skips"`
	FalseProbes   uint64 `json:"false_probes"`
	// RemovedAtOpen counts half-sealed segment files deleted during Open.
	RemovedAtOpen int `json:"removed_at_open"`
	// SegmentsReclaimed counts sealed files deleted by segment GC: every
	// trace they held was promoted back to hot, superseded by a newer
	// segment, or dropped by shard handoff.
	SegmentsReclaimed uint64     `json:"segments_reclaimed"`
	Cache             CacheStats `json:"cache"`
}

// stats summarizes the tier. residentTraces is supplied by the store
// (the tier does not see the hot graph).
func (t *tierManager) stats(residentTraces int) TieringStats {
	st := TieringStats{
		Enabled:           true,
		ResidentTraces:    residentTraces,
		DemotedTraces:     t.demoted.Load(),
		PromotedTraces:    t.promoted.Load(),
		ColdLookups:       t.coldLookups.Load(),
		ColdHits:          t.coldHits.Load(),
		SegmentProbes:     t.segmentProbes.Load(),
		BloomSkips:        t.bloomSkips.Load(),
		FalseProbes:       t.falseProbes.Load(),
		RemovedAtOpen:     t.removedAtOpen,
		SegmentsReclaimed: t.segmentsReclaimed.Load(),
		Cache:             t.cache.stats(),
	}
	for _, s := range t.snapshotSegs() {
		st.Segments++
		st.SealedTraces += s.nTraces
		st.SealedRows += s.nRows
		st.SealedBytes += s.size
	}
	return st
}
