package store

import (
	"bufio"
	"errors"
	"os"
	"testing"
)

// fakeFile is a File stub with scriptable failures, for pinning the
// logWriter.close contract without a real filesystem.
type fakeFile struct {
	writeErr, syncErr, closeErr error
	writes, syncs, closes       int
}

func (f *fakeFile) Write(p []byte) (int, error) {
	f.writes++
	if f.writeErr != nil {
		return 0, f.writeErr
	}
	return len(p), nil
}
func (f *fakeFile) Read([]byte) (int, error)       { return 0, errors.New("not readable") }
func (f *fakeFile) Seek(int64, int) (int64, error) { return 0, nil }
func (f *fakeFile) Sync() error                    { f.syncs++; return f.syncErr }
func (f *fakeFile) Close() error                   { f.closes++; return f.closeErr }
func (f *fakeFile) Stat() (os.FileInfo, error)     { return nil, errors.New("no stat") }

func newFakeWriter(f *fakeFile, sync bool) *logWriter {
	return &logWriter{f: f, buf: bufio.NewWriter(f), sync: sync}
}

// TestLogWriterCloseContract pins close's deterministic error ordering:
// flush -> sync -> close, first failure wins, every step still runs except
// that a failed flush skips the pointless fsync, and a store opened
// without Sync never fsyncs at all.
func TestLogWriterCloseContract(t *testing.T) {
	someEntry := entry{op: opPutNode, row: Row{ID: "x", Class: "data", AppID: "A", XML: "<x/>"}}

	t.Run("nosync-close-never-syncs", func(t *testing.T) {
		f := &fakeFile{}
		w := newFakeWriter(f, false)
		if err := w.writeEntry(someEntry); err != nil {
			t.Fatal(err)
		}
		if err := w.close(); err != nil {
			t.Fatal(err)
		}
		if f.syncs != 0 || f.closes != 1 {
			t.Fatalf("syncs=%d closes=%d, want 0/1", f.syncs, f.closes)
		}
	})
	t.Run("sync-close-syncs-once", func(t *testing.T) {
		f := &fakeFile{}
		w := newFakeWriter(f, true)
		if err := w.close(); err != nil {
			t.Fatal(err)
		}
		if f.syncs != 1 || f.closes != 1 {
			t.Fatalf("syncs=%d closes=%d, want 1/1", f.syncs, f.closes)
		}
	})
	t.Run("flush-error-wins-and-skips-sync", func(t *testing.T) {
		wantErr := errors.New("disk full")
		f := &fakeFile{writeErr: wantErr, syncErr: errors.New("later"), closeErr: errors.New("last")}
		w := newFakeWriter(f, true)
		if err := w.writeEntry(someEntry); err != nil {
			t.Fatal(err)
		}
		if err := w.close(); err != wantErr {
			t.Fatalf("close = %v, want flush error", err)
		}
		if f.syncs != 0 {
			t.Fatal("fsync ran after a failed flush")
		}
		if f.closes != 1 {
			t.Fatal("file was not closed after flush error")
		}
	})
	t.Run("sync-error-beats-close-error", func(t *testing.T) {
		wantErr := errors.New("fsync io error")
		f := &fakeFile{syncErr: wantErr, closeErr: errors.New("close error")}
		w := newFakeWriter(f, true)
		if err := w.close(); err != wantErr {
			t.Fatalf("close = %v, want sync error", err)
		}
		if f.closes != 1 {
			t.Fatal("file was not closed after sync error")
		}
	})
	t.Run("close-error-reported-last", func(t *testing.T) {
		wantErr := errors.New("close failed")
		f := &fakeFile{closeErr: wantErr}
		w := newFakeWriter(f, true)
		if err := w.close(); err != wantErr {
			t.Fatalf("close = %v, want close error", err)
		}
	})
}
