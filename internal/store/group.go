package store

import (
	"sync"
	"time"
)

// Group commit: the store's synced write path. Per-append fsync serializes
// every writer behind a full disk round trip (~100µs+ each on ext4), so
// synced ingest throughput is flat no matter how many goroutines write.
// The committer batches concurrent PutNode/PutEdge/UpdateNode appends into
// one buffered write + one flush + one fsync, releasing every waiter on
// the shared fsync. Batching is opportunistic by default — whatever
// requests queued while the previous fsync was in flight form the next
// batch — and can additionally wait a bounded flush window to accumulate
// more (Options.FlushWindow).
//
// A request carries one or more entries: the ingestion gateway commits a
// whole coalesced event batch as a single request (one enqueue, one wait,
// one shared fsync for the run), so batch writers pay the pipeline's
// coordination cost once per batch instead of once per record.

// commitReq is one writer's pending append run: the entries plus the
// channel their per-entry commit errors are delivered on.
type commitReq struct {
	entries []entry
	done    chan []error
}

// committer is the group-commit pipeline. One goroutine drains the request
// channel, writes batches under the store's logMu (so log order always
// equals apply order), and releases waiters.
type committer struct {
	s        *Store
	reqs     chan *commitReq
	window   time.Duration
	maxBatch int

	mu      sync.RWMutex // guards stopped against concurrent enqueue/stop
	stopped bool
	wg      sync.WaitGroup
}

const (
	defaultMaxBatch  = 512
	committerBacklog = 1024
)

func newCommitter(s *Store, window time.Duration, maxBatch int) *committer {
	if maxBatch <= 0 {
		maxBatch = defaultMaxBatch
	}
	c := &committer{
		s:        s,
		reqs:     make(chan *commitReq, committerBacklog),
		window:   window,
		maxBatch: maxBatch,
	}
	c.wg.Add(1)
	go c.run()
	return c
}

// enqueue submits one entry and blocks until its batch is durable (or
// failed). Returns the commit error exactly as the serial path would.
func (c *committer) enqueue(e entry) error {
	return c.enqueueAll([]entry{e})[0]
}

// enqueueAll submits a run of entries as one commit unit and blocks until
// the run is durable (or failed). The run shares a single flush+fsync —
// with whatever other requests joined the same batch — and the returned
// per-entry errors align with entries.
func (c *committer) enqueueAll(entries []entry) []error {
	req := &commitReq{entries: entries, done: make(chan []error, 1)}
	c.mu.RLock()
	if c.stopped {
		c.mu.RUnlock()
		return errsAll(len(entries), errClosed)
	}
	c.reqs <- req
	c.mu.RUnlock()
	return <-req.done
}

// errsAll fills a per-entry error slice with one shared error.
func errsAll(n int, err error) []error {
	errs := make([]error, n)
	for i := range errs {
		errs[i] = err
	}
	return errs
}

// stop drains every in-flight request and terminates the pipeline. Safe to
// call once; enqueue after stop fails with errClosed.
func (c *committer) stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	close(c.reqs)
	c.mu.Unlock()
	c.wg.Wait()
}

func (c *committer) run() {
	defer c.wg.Done()
	batch := make([]*commitReq, 0, c.maxBatch)
	for {
		req, ok := <-c.reqs
		if !ok {
			return
		}
		batch = append(batch[:0], req)
		batch = c.collect(batch)
		c.process(batch)
	}
}

// batchEntries counts the entries carried by the queued requests.
func batchEntries(batch []*commitReq) int {
	n := 0
	for _, req := range batch {
		n += len(req.entries)
	}
	return n
}

// collect grows the batch: first greedily with whatever is already
// queued, then — when a flush window is configured — by waiting up to the
// window for stragglers. The entry cap is soft against multi-entry
// requests: a request is never split, so one oversized run forms its own
// batch. A closed channel ends collection.
func (c *committer) collect(batch []*commitReq) []*commitReq {
	n := batchEntries(batch)
	for n < c.maxBatch {
		select {
		case req, ok := <-c.reqs:
			if !ok {
				return batch
			}
			batch = append(batch, req)
			n += len(req.entries)
			continue
		default:
		}
		break
	}
	if c.window <= 0 || n >= c.maxBatch {
		return batch
	}
	timer := time.NewTimer(c.window)
	defer timer.Stop()
	for n < c.maxBatch {
		select {
		case req, ok := <-c.reqs:
			if !ok {
				return batch
			}
			batch = append(batch, req)
			n += len(req.entries)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// process makes one batch durable and applies it. Under logMu the frames
// are buffered in order, flushed once, fsynced once (sync mode), then
// applied in the same order, then ONE snapshot covering the whole batch
// is published, the change-feed events are emitted, and finally the
// waiters are released — so the log's entry order, the in-memory state's
// order, the snapshot sequence and the change feed's order all agree,
// exactly as the serial path guarantees. Publishing before releasing the
// waiters means an acknowledged write is always visible in the snapshot
// (read-your-writes); emitting events after the publish means a
// subscriber reacting to an event always finds a snapshot at least as
// new as the event (the continuous checker re-checks final state, never
// a stale snapshot). A write/flush/fsync failure fails the whole batch
// (nothing was applied); apply errors are per-entry.
func (c *committer) process(batch []*commitReq) {
	s := c.s
	total := batchEntries(batch)
	s.logMu.Lock()
	var err error
	var promos []*pendingPromo
	staged := map[string]bool{}
	if s.log == nil {
		err = errClosed
	} else {
	write:
		for _, req := range batch {
			for _, e := range req.entries {
				// A batch entry landing on a sealed trace promotes it:
				// base frames enter the buffer ahead of the delta frame
				// and share the batch's flush+fsync; the in-memory
				// restore waits until that fsync succeeds.
				var promo *pendingPromo
				if e.op != opTraceDrop {
					if promo, err = s.stagePromotionLocked(e.row.AppID, staged); err != nil {
						break write
					}
				}
				if promo != nil {
					promos = append(promos, promo)
				}
				if err = s.log.writeEntry(e); err != nil {
					break write
				}
			}
		}
		if err == nil {
			err = s.log.flush()
		}
		if err == nil && s.log.sync {
			err = s.log.syncFile()
			s.stats.Fsyncs.Add(1)
			if err != nil {
				s.stats.SyncFailures.Add(1)
			}
		}
	}
	if err == nil {
		err = s.applyPromotionsLocked(promos)
	}
	if err != nil {
		for _, req := range batch {
			req.done <- errsAll(len(req.entries), err)
		}
		s.logMu.Unlock()
		return
	}
	s.stats.CommitBatches.Add(1)
	s.stats.GroupedCommits.Add(uint64(total))
	for {
		max := s.stats.MaxCommitBatch.Load()
		if uint64(total) <= max || s.stats.MaxCommitBatch.CompareAndSwap(max, uint64(total)) {
			break
		}
	}
	results := make([][]error, len(batch))
	evs := make([]Event, 0, total)
	for i, req := range batch {
		errs := make([]error, len(req.entries))
		for j, e := range req.entries {
			ev, err := s.apply(e)
			errs[j] = err
			if err == nil {
				evs = append(evs, ev)
			}
		}
		results[i] = errs
	}
	s.publishLocked()
	for _, ev := range evs {
		s.publish(ev)
	}
	for i, req := range batch {
		req.done <- results[i]
	}
	s.logMu.Unlock()
}
