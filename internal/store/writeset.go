package store

import "repro/internal/provenance"

// writeSetCap bounds the records a WriteSet retains. A burst larger than
// this collapses the set to full — the consumer then falls back to a
// whole-trace re-evaluation, which is exactly what it would have done
// before write sets existed. The cap keeps coalescing O(1) in memory no
// matter how long a trace's dirty interval grows.
const writeSetCap = 256

// NodeWrite is one node mutation in a write set. Prev carries the
// pre-image for updates (nil for inserts) so a consumer can test
// predicates against both the old and the new attribute values —
// a node that never matched and still does not match cannot have
// affected anything.
type NodeWrite struct {
	Kind EventKind
	Node *provenance.Node
	Prev *provenance.Node
}

// EdgeWrite is one edge insertion in a write set.
type EdgeWrite struct {
	Edge *provenance.Edge
}

// WriteSet is the accumulated delta of one trace between two of its
// versions: every node and edge commit in the half-open version interval
// (Base, Max]. The continuous checker threads write sets from the change
// feed through its dirty-set coalescing into delta-driven re-checks
// (Registry.CheckDelta); a nil or full WriteSet means "anything may have
// changed" and forces a whole-trace re-evaluation.
//
// Records are the change feed's clones: retaining them is safe.
type WriteSet struct {
	full  bool
	base  uint64 // trace version before the first covered commit
	max   uint64 // trace version after the last covered commit
	Nodes []NodeWrite
	Edges []EdgeWrite
}

// NewWriteSet returns an empty write set.
func NewWriteSet() *WriteSet { return &WriteSet{} }

// FullWriteSet returns a write set that covers everything: consumers must
// treat the whole trace as potentially changed.
func FullWriteSet() *WriteSet { return &WriteSet{full: true} }

// Full reports whether the set has degraded to "anything may have
// changed" — it was built full, overflowed the record cap, or was merged
// across a version gap.
func (ws *WriteSet) Full() bool { return ws.full }

// Base is the trace version immediately before the first covered commit:
// a consumer holding results valid at version >= Base sees no gap below
// the delta. Zero (with Max zero) means the set covers no commit yet.
func (ws *WriteSet) Base() uint64 { return ws.base }

// Max is the trace version immediately after the last covered commit.
func (ws *WriteSet) Max() uint64 { return ws.max }

// Len reports the number of retained records (zero once full).
func (ws *WriteSet) Len() int { return len(ws.Nodes) + len(ws.Edges) }

// AddEvent folds one change-feed event into the set. Events of one trace
// must be added in commit order (the order the feed delivers them).
func (ws *WriteSet) AddEvent(ev Event) {
	if ev.TraceVersion > 0 {
		if ws.base == 0 && ws.max == 0 {
			ws.base = ev.TraceVersion - 1
		}
		if ev.TraceVersion > ws.max {
			ws.max = ev.TraceVersion
		}
	} else {
		// An event without a trace version cannot be placed in the version
		// interval; the set can no longer vouch for contiguity.
		ws.full = true
	}
	if ws.full {
		ws.Nodes, ws.Edges = nil, nil
		return
	}
	switch {
	case ev.Node != nil:
		ws.Nodes = append(ws.Nodes, NodeWrite{Kind: ev.Kind, Node: ev.Node, Prev: ev.Prev})
	case ev.Edge != nil:
		ws.Edges = append(ws.Edges, EdgeWrite{Edge: ev.Edge})
	}
	if len(ws.Nodes)+len(ws.Edges) > writeSetCap {
		ws.full = true
		ws.Nodes, ws.Edges = nil, nil
	}
}

// Merge folds another write set into this one (coalescing: two pending
// dirty intervals of the same trace become one). Contiguity is checked —
// merging across a version gap, where commits between the two sets were
// never observed, degrades the result to full rather than silently
// claiming coverage it does not have.
func (ws *WriteSet) Merge(o *WriteSet) {
	if o == nil {
		ws.full = true
		ws.Nodes, ws.Edges = nil, nil
		return
	}
	if o.base > 0 || o.max > 0 {
		switch {
		case ws.base == 0 && ws.max == 0:
			ws.base = o.base
		case o.base > ws.max:
			ws.full = true // gap between the intervals
		}
		if o.max > ws.max {
			ws.max = o.max
		}
	}
	if o.full {
		ws.full = true
	}
	if ws.full {
		ws.Nodes, ws.Edges = nil, nil
		return
	}
	ws.Nodes = append(ws.Nodes, o.Nodes...)
	ws.Edges = append(ws.Edges, o.Edges...)
	if len(ws.Nodes)+len(ws.Edges) > writeSetCap {
		ws.full = true
		ws.Nodes, ws.Edges = nil, nil
	}
}
