package store

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/provenance"
)

func reqNode() *provenance.Node {
	return &provenance.Node{
		ID: "PE3", Class: provenance.ClassData, Type: "jobRequisition", AppID: "App01",
		Timestamp: time.Date(2011, 4, 11, 9, 30, 0, 0, time.UTC),
		Attrs: map[string]provenance.Value{
			"reqID":        provenance.String("REQ001"),
			"positionType": provenance.String("new"),
			"dept":         provenance.String("dept501"),
			"position":     provenance.String("Sales"),
			"headcount":    provenance.Int(2),
			"urgent":       provenance.Bool(false),
			"budget":       provenance.Float(120000.50),
		},
	}
}

func relEdge() *provenance.Edge {
	return &provenance.Edge{
		ID: "PE7", Type: "submitterOf", AppID: "App01",
		Source: "PE1", Target: "PE3",
		Timestamp: time.Date(2011, 4, 11, 9, 31, 0, 0, time.UTC),
		Attrs: map[string]provenance.Value{
			"confidence": provenance.Float(0.98),
		},
	}
}

func TestEncodeNodeShape(t *testing.T) {
	row, err := EncodeNode(reqNode())
	if err != nil {
		t.Fatal(err)
	}
	if row.ID != "PE3" || row.Class != "data" || row.AppID != "App01" {
		t.Fatalf("row columns = %+v", row)
	}
	// The XML shape must match Table 1 of the paper: ps-prefixed root named
	// after the type, ps:id / ps:class attributes, ps:appID element,
	// attribute elements named after the fields.
	for _, want := range []string{
		`<ps:jobRequisition ps:id="PE3" ps:class="data">`,
		`<ps:appID>App01</ps:appID>`,
		`<ps:timestamp value="2011-04-11T09:30:00Z"/>`,
		`<reqID kind="string">REQ001</reqID>`,
		`<dept kind="string">dept501</dept>`,
		`<headcount kind="int">2</headcount>`,
		`</ps:jobRequisition>`,
	} {
		if !strings.Contains(row.XML, want) {
			t.Errorf("XML missing %q:\n%s", want, row.XML)
		}
	}
}

func TestEncodeEdgeShape(t *testing.T) {
	row, err := EncodeEdge(relEdge())
	if err != nil {
		t.Fatal(err)
	}
	if row.Class != "relation" {
		t.Fatalf("row class = %q", row.Class)
	}
	for _, want := range []string{
		`<ps:relation ps:id="PE7" ps:class="relation" ps:type="submitterOf">`,
		`<ps:source>PE1</ps:source>`,
		`<ps:target>PE3</ps:target>`,
	} {
		if !strings.Contains(row.XML, want) {
			t.Errorf("XML missing %q:\n%s", want, row.XML)
		}
	}
}

func TestNodeRoundTrip(t *testing.T) {
	orig := reqNode()
	row, err := EncodeNode(orig)
	if err != nil {
		t.Fatal(err)
	}
	n, e, err := DecodeRow(row)
	if err != nil {
		t.Fatal(err)
	}
	if e != nil {
		t.Fatal("node decoded as edge")
	}
	if n.ID != orig.ID || n.Class != orig.Class || n.Type != orig.Type || n.AppID != orig.AppID {
		t.Fatalf("identity mismatch: %v", n)
	}
	if !n.Timestamp.Equal(orig.Timestamp) {
		t.Errorf("timestamp %v != %v", n.Timestamp, orig.Timestamp)
	}
	if len(n.Attrs) != len(orig.Attrs) {
		t.Fatalf("attr count %d != %d", len(n.Attrs), len(orig.Attrs))
	}
	for k, v := range orig.Attrs {
		if !n.Attrs[k].Equal(v) {
			t.Errorf("attr %s: %v != %v", k, n.Attrs[k], v)
		}
	}
}

func TestEdgeRoundTrip(t *testing.T) {
	orig := relEdge()
	row, err := EncodeEdge(orig)
	if err != nil {
		t.Fatal(err)
	}
	n, e, err := DecodeRow(row)
	if err != nil {
		t.Fatal(err)
	}
	if n != nil {
		t.Fatal("edge decoded as node")
	}
	if e.ID != orig.ID || e.Type != orig.Type || e.Source != orig.Source || e.Target != orig.Target {
		t.Fatalf("identity mismatch: %v", e)
	}
	if !e.Attrs["confidence"].Equal(orig.Attrs["confidence"]) {
		t.Errorf("attrs lost: %v", e.Attrs)
	}
}

func TestRoundTripEscaping(t *testing.T) {
	n := &provenance.Node{
		ID: "PE<&>", Class: provenance.ClassData, Type: "doc", AppID: `App"quoted"`,
		Attrs: map[string]provenance.Value{
			"body": provenance.String("<ps:fake attr=\"x\"/> & ]]> text\n\ttabs"),
		},
	}
	row, err := EncodeNode(n)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeRow(row)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != n.ID || got.AppID != n.AppID {
		t.Fatalf("identity mismatch: %v", got)
	}
	if got.Attrs["body"].Str() != n.Attrs["body"].Str() {
		t.Errorf("body = %q", got.Attrs["body"].Str())
	}
}

func TestDecodeRejectsCorruptRows(t *testing.T) {
	good, err := EncodeNode(reqNode())
	if err != nil {
		t.Fatal(err)
	}
	cases := []Row{
		{ID: "PE3", Class: "data", AppID: "App01", XML: "not xml at all"},
		{ID: "WRONG", Class: "data", AppID: "App01", XML: good.XML},
		{ID: "PE3", Class: "data", AppID: "OtherApp", XML: good.XML},
		{ID: "PE3", Class: "data", AppID: "App01",
			XML: strings.Replace(good.XML, `kind="int"`, `kind="widget"`, 1)},
		{ID: "PE3", Class: "data", AppID: "App01",
			XML: strings.Replace(good.XML, `ps:class="data"`, `ps:class="galaxy"`, 1)},
		{ID: "PE3", Class: "data", AppID: "App01",
			XML: `<jobRequisition ps:id="PE3" ps:class="data"></jobRequisition>`},
	}
	for i, r := range cases {
		if _, _, err := DecodeRow(r); err == nil {
			t.Errorf("case %d: corrupt row decoded successfully", i)
		}
	}
}

func TestEncodeSkipsAbsentAttrs(t *testing.T) {
	n := &provenance.Node{
		ID: "n", Class: provenance.ClassData, Type: "doc", AppID: "A",
		Attrs: map[string]provenance.Value{"gone": {}},
	}
	row, err := EncodeNode(n)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(row.XML, "gone") {
		t.Errorf("absent attribute serialized: %s", row.XML)
	}
	got, _, err := DecodeRow(row)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Attrs) != 0 {
		t.Errorf("decoded attrs = %v", got.Attrs)
	}
}

// Property: any node with arbitrary string attribute values round-trips.
func TestNodeRoundTripProperty(t *testing.T) {
	xmlValid := func(s string) bool {
		for _, r := range s {
			ok := r == '\t' || r == '\n' || r == '\r' ||
				(r >= 0x20 && r <= 0xD7FF) || (r >= 0xE000 && r <= 0xFFFD) ||
				(r >= 0x10000 && r <= 0x10FFFF)
			if !ok {
				return false
			}
		}
		return true
	}
	f := func(id, app, val string) bool {
		if id == "" || app == "" {
			return true // validation rejects these by design
		}
		if !xmlValid(id) || !xmlValid(app) || !xmlValid(val) {
			return true // XML cannot carry these code points; out of scope
		}
		n := &provenance.Node{
			ID: id, Class: provenance.ClassData, Type: "doc", AppID: app,
			Attrs: map[string]provenance.Value{"v": provenance.String(val)},
		}
		row, err := EncodeNode(n)
		if err != nil {
			return false
		}
		got, _, err := DecodeRow(row)
		if err != nil {
			return false
		}
		return got.ID == id && got.AppID == app && got.Attrs["v"].Str() == val
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeNode(b *testing.B) {
	n := reqNode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeNode(n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRow(b *testing.B) {
	row, err := EncodeNode(reqNode())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeRow(row); err != nil {
			b.Fatal(err)
		}
	}
}
