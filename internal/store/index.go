package store

import (
	"sort"

	"repro/internal/provenance"
)

// indexSet maintains the secondary attribute indexes declared by the data
// model (FieldDef.Indexed): for each (node type, field) pair, a map from
// value key to the sorted set of node IDs carrying that value. Definition
// binding in the rule engine hits these indexes instead of scanning
// (design decision D4 in DESIGN.md).
type indexSet struct {
	byField map[indexKey]map[string][]string // (type, field) -> value key -> node IDs
}

type indexKey struct {
	typ   string
	field string
}

func newIndexSet() *indexSet {
	return &indexSet{byField: make(map[indexKey]map[string][]string)}
}

// declare creates an empty index for (type, field).
func (x *indexSet) declare(typ, field string) {
	k := indexKey{typ, field}
	if _, ok := x.byField[k]; !ok {
		x.byField[k] = make(map[string][]string)
	}
}

// add indexes every indexed attribute the node carries.
func (x *indexSet) add(n *provenance.Node) {
	if n == nil {
		return
	}
	for field, v := range n.Attrs {
		if v.IsZero() {
			continue
		}
		k := indexKey{n.Type, field}
		bucket, ok := x.byField[k]
		if !ok {
			continue
		}
		ids := bucket[v.Key()]
		pos := sort.SearchStrings(ids, n.ID)
		if pos < len(ids) && ids[pos] == n.ID {
			continue
		}
		ids = append(ids, "")
		copy(ids[pos+1:], ids[pos:])
		ids[pos] = n.ID
		bucket[v.Key()] = ids
	}
}

// remove unindexes the node's attributes (used before re-adding on update).
func (x *indexSet) remove(n *provenance.Node) {
	if n == nil {
		return
	}
	for field, v := range n.Attrs {
		if v.IsZero() {
			continue
		}
		k := indexKey{n.Type, field}
		bucket, ok := x.byField[k]
		if !ok {
			continue
		}
		ids := bucket[v.Key()]
		pos := sort.SearchStrings(ids, n.ID)
		if pos < len(ids) && ids[pos] == n.ID {
			ids = append(ids[:pos], ids[pos+1:]...)
			if len(ids) == 0 {
				delete(bucket, v.Key())
			} else {
				bucket[v.Key()] = ids
			}
		}
	}
}

// lookup returns the IDs indexed under (type, field, value) and whether an
// index exists for the pair. The returned slice is a copy.
func (x *indexSet) lookup(typ, field string, v provenance.Value) ([]string, bool) {
	bucket, ok := x.byField[indexKey{typ, field}]
	if !ok {
		return nil, false
	}
	ids := bucket[v.Key()]
	return append([]string(nil), ids...), true
}

// size reports the number of declared indexes.
func (x *indexSet) size() int { return len(x.byField) }
