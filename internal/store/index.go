package store

import (
	"sort"

	"repro/internal/provenance"
)

// indexSet maintains the secondary attribute indexes declared by the data
// model (FieldDef.Indexed): for each (node type, field) pair, a map from
// value key to the sorted set of node IDs carrying that value. Definition
// binding in the rule engine hits these indexes instead of scanning
// (design decision D4 in DESIGN.md).
//
// Like the graph and the row table, the set is copy-on-write per publish
// epoch (D7): snapshot() clones only the tiny per-index root maps, a
// mutation clones the one value bucket it touches, and posting-list
// updates always build a fresh slice. Published slices are therefore
// immutable, which lets lookup return them without copying.
type indexSet struct {
	epoch   uint64
	byField map[indexKey]*ixIndex // (type, field) -> index
}

type indexKey struct {
	typ   string
	field string
}

const ixBuckets = 64

// ixIndex is one declared (type, field) index, its value buckets sharded
// so an epoch clone copies ixBuckets pointers, not the whole value map.
type ixIndex struct {
	epoch   uint64
	buckets [ixBuckets]*ixBucket
}

type ixBucket struct {
	epoch uint64
	vals  map[string][]string // value key -> sorted node IDs
}

func newIndexSet() *indexSet {
	return &indexSet{byField: make(map[indexKey]*ixIndex)}
}

// snapshot returns a frozen copy sharing every index, then advances the
// working set's epoch.
func (x *indexSet) snapshot() *indexSet {
	snap := &indexSet{epoch: x.epoch, byField: make(map[indexKey]*ixIndex, len(x.byField))}
	for k, v := range x.byField {
		snap.byField[k] = v
	}
	x.epoch++
	return snap
}

// declare creates an empty index for (type, field). Only called during
// Open, before any snapshot exists.
func (x *indexSet) declare(typ, field string) {
	k := indexKey{typ, field}
	if _, ok := x.byField[k]; !ok {
		x.byField[k] = &ixIndex{epoch: x.epoch}
	}
}

// bucketForWrite returns the value bucket for key, copying the index and
// the bucket out of frozen epochs as needed.
func (x *indexSet) bucketForWrite(k indexKey, valKey string) *ixBucket {
	ix, ok := x.byField[k]
	if !ok {
		return nil
	}
	if ix.epoch != x.epoch {
		nix := &ixIndex{epoch: x.epoch, buckets: ix.buckets}
		x.byField[k] = nix
		ix = nix
	}
	bi := rowHash(valKey) % ixBuckets
	b := ix.buckets[bi]
	switch {
	case b == nil:
		b = &ixBucket{epoch: x.epoch, vals: make(map[string][]string)}
		ix.buckets[bi] = b
	case b.epoch != x.epoch:
		nb := &ixBucket{epoch: x.epoch, vals: make(map[string][]string, len(b.vals)+1)}
		for k, v := range b.vals {
			nb.vals[k] = v
		}
		b = nb
		ix.buckets[bi] = b
	}
	return b
}

// add indexes every indexed attribute the node carries.
func (x *indexSet) add(n *provenance.Node) {
	if n == nil {
		return
	}
	for field, v := range n.Attrs {
		if v.IsZero() {
			continue
		}
		b := x.bucketForWrite(indexKey{n.Type, field}, v.Key())
		if b == nil {
			continue
		}
		ids := b.vals[v.Key()]
		pos := sort.SearchStrings(ids, n.ID)
		if pos < len(ids) && ids[pos] == n.ID {
			continue
		}
		// Fresh slice: the old one may be visible in published snapshots.
		next := make([]string, 0, len(ids)+1)
		next = append(next, ids[:pos]...)
		next = append(next, n.ID)
		next = append(next, ids[pos:]...)
		b.vals[v.Key()] = next
	}
}

// remove unindexes the node's attributes (used before re-adding on update).
func (x *indexSet) remove(n *provenance.Node) {
	if n == nil {
		return
	}
	for field, v := range n.Attrs {
		if v.IsZero() {
			continue
		}
		b := x.bucketForWrite(indexKey{n.Type, field}, v.Key())
		if b == nil {
			continue
		}
		ids := b.vals[v.Key()]
		pos := sort.SearchStrings(ids, n.ID)
		if pos < len(ids) && ids[pos] == n.ID {
			if len(ids) == 1 {
				delete(b.vals, v.Key())
				continue
			}
			next := make([]string, 0, len(ids)-1)
			next = append(next, ids[:pos]...)
			next = append(next, ids[pos+1:]...)
			b.vals[v.Key()] = next
		}
	}
}

// vacuum rebuilds every value bucket's map at its current size. Go maps
// never release bucket arrays on delete, so after a mass demotion
// unindexes thousands of nodes the buckets would keep their peak
// footprint; rebuilding them returns the memory. Published snapshots
// keep their own index/bucket pointers and are untouched.
func (x *indexSet) vacuum() {
	for k, ix := range x.byField {
		nix := &ixIndex{epoch: x.epoch}
		for bi, b := range ix.buckets {
			if b == nil {
				continue
			}
			nb := &ixBucket{epoch: x.epoch, vals: make(map[string][]string, len(b.vals))}
			for vk, ids := range b.vals {
				nb.vals[vk] = ids
			}
			nix.buckets[bi] = nb
		}
		x.byField[k] = nix
	}
}

// lookup returns the IDs indexed under (type, field, value) and whether an
// index exists for the pair. The returned slice is immutable — posting
// lists are never mutated in place — so callers may retain it but must
// not modify it.
func (x *indexSet) lookup(typ, field string, v provenance.Value) ([]string, bool) {
	ix, ok := x.byField[indexKey{typ, field}]
	if !ok {
		return nil, false
	}
	b := ix.buckets[rowHash(v.Key())%ixBuckets]
	if b == nil {
		return nil, true
	}
	return b.vals[v.Key()], true
}

// size reports the number of declared indexes.
func (x *indexSet) size() int { return len(x.byField) }
