package store_test

// Crash-recovery property harness. The store runs a fixed operation
// script — puts, updates, edges across three traces with compactions in
// the middle — on a fault-injection filesystem that "kills the machine"
// at the Nth mutating filesystem operation: the failing write persists
// only a prefix of its bytes and everything after it fails. For every
// possible N the harness then reopens the directory with the real
// filesystem and asserts the recovered store is prefix-consistent:
//
//   - its observable state equals the state after some prefix of the
//     script, at least as long as the acknowledged (committed) prefix —
//     Sync acknowledgements are durable, and at most the single
//     in-flight operation beyond them may survive;
//   - trace versions match what a serial replay of the recovered log
//     produces (the PR-1 cache invariant), exactly equaling the
//     operation count per trace when no compaction ran;
//   - the store stays writable and a second close/reopen cycle is a
//     fixed point.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/store/faultfs"
)

func crashModel(t testing.TB) *provenance.Model {
	t.Helper()
	m := provenance.NewModel("crash")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.AddType(&provenance.TypeDef{Name: "jobRequisition", Class: provenance.ClassData}))
	must(m.AddField("jobRequisition", &provenance.FieldDef{Name: "reqID", Kind: provenance.KindString, Indexed: true}))
	must(m.AddRelation(&provenance.RelationDef{Name: "relatedTo"}))
	return m
}

func crashReq(id, app, reqID string) *provenance.Node {
	return &provenance.Node{
		ID: id, Class: provenance.ClassData, Type: "jobRequisition", AppID: app,
		Timestamp: time.Unix(2000, 0).UTC(),
		Attrs:     map[string]provenance.Value{"reqID": provenance.String(reqID)},
	}
}

// scriptOp is one step of the crash script. mutating steps count toward
// the committed prefix; Compact does not change observable state.
type scriptOp struct {
	mutating bool
	compact  bool
	do       func(s *store.Store) error
}

// crashScript builds the deterministic workload: 3 traces, puts, updates
// and edges, one compaction mid-script and one near the end (so crash
// points land before, inside and after both).
func crashScript() []scriptOp {
	var ops []scriptOp
	put := func(id, app, reqID string) {
		ops = append(ops, scriptOp{mutating: true, do: func(s *store.Store) error {
			return s.PutNode(crashReq(id, app, reqID))
		}})
	}
	update := func(id, app, reqID string) {
		ops = append(ops, scriptOp{mutating: true, do: func(s *store.Store) error {
			return s.UpdateNode(crashReq(id, app, reqID))
		}})
	}
	edge := func(id, app, src, dst string) {
		ops = append(ops, scriptOp{mutating: true, do: func(s *store.Store) error {
			return s.PutEdge(&provenance.Edge{ID: id, Type: "relatedTo", AppID: app, Source: src, Target: dst})
		}})
	}
	compact := func() {
		ops = append(ops, scriptOp{compact: true, do: func(s *store.Store) error { return s.Compact() }})
	}

	for i := 0; i < 6; i++ {
		app := fmt.Sprintf("A%d", i%3)
		put(fmt.Sprintf("n%d", i), app, fmt.Sprintf("REQ%d", i))
	}
	update("n0", "A0", "REQ0-v2")
	edge("e0", "A0", "n0", "n3")
	compact()
	for i := 6; i < 10; i++ {
		app := fmt.Sprintf("A%d", i%3)
		put(fmt.Sprintf("n%d", i), app, fmt.Sprintf("REQ%d", i))
	}
	update("n1", "A1", "REQ1-v2")
	edge("e1", "A1", "n1", "n4")
	compact()
	put("n10", "A1", "REQ10")
	return ops
}

// exportString fingerprints a store's observable state.
func exportString(t testing.TB, s *store.Store) string {
	t.Helper()
	var buf bytes.Buffer
	if err := s.ExportRows(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// prefixModels computes, for every script prefix length k (counting only
// mutating ops), the expected export fingerprint and per-trace versions,
// using a purely in-memory store.
func prefixModels(t *testing.T, ops []scriptOp) (exports []string, versions []map[string]uint64) {
	t.Helper()
	mutating := make([]scriptOp, 0, len(ops))
	for _, op := range ops {
		if op.mutating {
			mutating = append(mutating, op)
		}
	}
	for k := 0; k <= len(mutating); k++ {
		s, err := store.Open(store.Options{Model: crashModel(t)})
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range mutating[:k] {
			if err := op.do(s); err != nil {
				t.Fatal(err)
			}
		}
		exports = append(exports, exportString(t, s))
		vers := map[string]uint64{}
		for _, app := range []string{"A0", "A1", "A2"} {
			vers[app] = s.TraceVersion(app)
		}
		versions = append(versions, vers)
		s.Close()
	}
	return exports, versions
}

func TestCrashRecoveryHarness(t *testing.T) {
	ops := crashScript()
	firstCompact := len(ops)
	for i, op := range ops {
		if op.compact {
			firstCompact = i
			break
		}
	}
	exports, versions := prefixModels(t, ops)

	// Pass 0: count the workload's fault points on a fault-free run.
	probe := faultfs.New(nil)
	{
		dir := t.TempDir()
		s, err := store.Open(store.Options{Dir: dir, Model: crashModel(t), Sync: true, FS: probe})
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			if err := op.do(s); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	points := probe.Ops()
	if points < 40 {
		t.Fatalf("suspiciously few fault points: %d", points)
	}
	stride := 1
	if testing.Short() {
		stride = 7
	}

	for point := 1; point <= points; point += stride {
		point := point
		t.Run(fmt.Sprintf("crash-at-%d", point), func(t *testing.T) {
			dir := t.TempDir()
			ffs := faultfs.New(faultfs.CrashAt(point))
			committed := 0 // mutating ops acknowledged before the crash
			brokeAt := len(ops)
			s, err := store.Open(store.Options{Dir: dir, Model: crashModel(t), Sync: true, FS: ffs})
			if err == nil {
				for i, op := range ops {
					if err := op.do(s); err != nil {
						brokeAt = i
						break
					}
					if op.mutating {
						committed++
					}
				}
				s.Close() // post-crash close errors are expected; ignore
			} else {
				brokeAt = 0
			}

			// The machine is dead; recover from the bytes on disk.
			s2, err := store.Open(store.Options{Dir: dir, Model: crashModel(t), Sync: true})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer s2.Close()

			got := exportString(t, s2)
			matched := -1
			// Acknowledged commits are durable; at most the one operation
			// in flight when the crash hit may additionally survive.
			for k := committed; k <= committed+1 && k < len(exports); k++ {
				if got == exports[k] {
					matched = k
					break
				}
			}
			if matched < 0 {
				t.Fatalf("recovered state matches no allowed prefix: committed=%d\ngot:\n%s", committed, got)
			}

			// Trace versions equal a serial replay of the recovered log. A
			// second open of the same directory is such a replay; the two
			// must agree exactly. Before any compaction ran, versions also
			// equal the per-trace operation count of the matched prefix.
			vers := map[string]uint64{}
			for _, app := range []string{"A0", "A1", "A2"} {
				vers[app] = s2.TraceVersion(app)
			}
			// Exact version accounting holds only while no compaction has
			// started: once one runs, a recovered log legitimately replays
			// fewer (collapsed) entries per trace.
			if brokeAt < firstCompact {
				for app, want := range versions[matched] {
					if vers[app] != want {
						t.Fatalf("trace %s version = %d, want %d (prefix %d)", app, vers[app], want, matched)
					}
				}
			}

			// The recovered store accepts writes and bumps versions by
			// exactly one.
			before := s2.TraceVersion("A0")
			if err := s2.PutNode(crashReq("fresh", "A0", "REQ-fresh")); err != nil {
				t.Fatalf("post-recovery write failed: %v", err)
			}
			if got := s2.TraceVersion("A0"); got != before+1 {
				t.Fatalf("version after post-recovery write = %d, want %d", got, before+1)
			}
			want2 := exportString(t, s2)
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}

			// Close/reopen is a fixed point: same state, same versions.
			s3, err := store.Open(store.Options{Dir: dir, Model: crashModel(t), Sync: true})
			if err != nil {
				t.Fatalf("second recovery failed: %v", err)
			}
			defer s3.Close()
			if got3 := exportString(t, s3); got3 != want2 {
				t.Fatalf("state diverged across close/reopen:\nfirst:\n%s\nsecond:\n%s", want2, got3)
			}
			vers["A0"]++ // the fresh write
			for app, want := range vers {
				if got := s3.TraceVersion(app); got != want {
					t.Fatalf("replayed version of %s = %d, want %d", app, got, want)
				}
			}
		})
	}
}

// TestCompactFaultInjection aborts compactions with one-shot I/O errors at
// every stage and asserts the abort contract: the error surfaces, no
// scratch file is left behind, appends keep working (on the side log), and
// a close/reopen cycle loses nothing.
func TestCompactFaultInjection(t *testing.T) {
	cases := []struct {
		name   string
		decide func(faultfs.Op) faultfs.Fault
	}{
		{"snapshot-write", func(op faultfs.Op) faultfs.Fault {
			if op.Kind == faultfs.OpWrite && strings.HasSuffix(op.Path, ".tmp") {
				return faultfs.Err
			}
			return faultfs.None
		}},
		{"snapshot-fsync", func(op faultfs.Op) faultfs.Fault {
			if op.Kind == faultfs.OpSync && strings.HasSuffix(op.Path, ".tmp") {
				return faultfs.Err
			}
			return faultfs.None
		}},
		{"rename", func(op faultfs.Op) faultfs.Fault {
			if op.Kind == faultfs.OpRename {
				return faultfs.Err
			}
			return faultfs.None
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := faultfs.New(tc.decide)
			s, err := store.Open(store.Options{Dir: dir, Model: crashModel(t), FS: ffs})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				if err := s.PutNode(crashReq(fmt.Sprintf("n%d", i), "A", fmt.Sprintf("R%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Compact(); err == nil {
				t.Fatal("Compact succeeded despite injected fault")
			}
			if d := s.Durability(); d.CompactionFailures != 1 || d.Compactions != 0 {
				t.Fatalf("durability counters = %+v", d)
			}
			// No scratch file may survive an abort.
			if names, err := (store.OSFS{}).ReadDir(dir); err == nil {
				for _, n := range names {
					if strings.HasSuffix(n, ".tmp") {
						t.Fatalf("leftover scratch file %s", n)
					}
				}
			}
			// Appends continue (on the side log) and survive reopening.
			if err := s.PutNode(crashReq("after", "A", "R-after")); err != nil {
				t.Fatalf("write after aborted compaction: %v", err)
			}
			want := exportString(t, s)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2, err := store.Open(store.Options{Dir: dir, Model: crashModel(t)})
			if err != nil {
				t.Fatalf("reopen after aborted compaction: %v", err)
			}
			defer s2.Close()
			if got := exportString(t, s2); got != want {
				t.Fatalf("state diverged after aborted compaction:\nwant:\n%s\ngot:\n%s", want, got)
			}
			// A later, fault-free compaction folds everything back into
			// one main log.
			if err := s2.Compact(); err != nil {
				t.Fatalf("follow-up compaction: %v", err)
			}
			if got := exportString(t, s2); got != want {
				t.Fatal("follow-up compaction changed observable state")
			}
		})
	}
}

// TestCloseSyncPolicy pins the close contract: a store opened without
// Sync never fsyncs — not even on Close — while a synced store does, and
// an injected fsync failure during Close surfaces deterministically.
func TestCloseSyncPolicy(t *testing.T) {
	t.Run("nosync-never-fsyncs", func(t *testing.T) {
		ffs := faultfs.New(nil)
		s, err := store.Open(store.Options{Dir: t.TempDir(), Model: crashModel(t), FS: ffs})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := s.PutNode(crashReq(fmt.Sprintf("n%d", i), "A", "R")); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if n := ffs.SyncCalls(); n != 0 {
			t.Fatalf("Sync:false store issued %d fsyncs", n)
		}
	})
	t.Run("close-fsync-error-surfaces", func(t *testing.T) {
		// Every put fsyncs once; the close fsync is the (k+1)-th.
		const k = 3
		ffs := faultfs.New(faultfs.ErrOn(faultfs.OpSync, k+1))
		s, err := store.Open(store.Options{Dir: t.TempDir(), Model: crashModel(t), Sync: true, FS: ffs})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			if err := s.PutNode(crashReq(fmt.Sprintf("n%d", i), "A", "R")); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != faultfs.ErrInjected {
			t.Fatalf("Close = %v, want injected fsync error", err)
		}
	})
}
