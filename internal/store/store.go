package store

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/provenance"
)

// Options configures a Store.
type Options struct {
	// Dir is the directory holding the disk log. Empty means a purely
	// in-memory store (used by tests and short-lived analyses).
	Dir string
	// Model is the provenance data model records are validated against.
	// Required unless SkipValidation is set.
	Model *provenance.Model
	// Sync demands fsync durability: an append only returns once its log
	// frame is fsynced. Appends are group-committed — concurrent writers
	// share one write+fsync per batch — so sync throughput scales with
	// writer concurrency instead of collapsing to one fsync round trip
	// per record. Off by default: the recorder clients of the paper
	// tolerate losing the in-flight events on a crash.
	Sync bool
	// FlushWindow bounds how long the group committer waits for more
	// concurrent appends to join a batch after the first arrives. Zero
	// batches opportunistically: whatever queued during the previous
	// flush+fsync forms the next batch, adding no artificial latency.
	FlushWindow time.Duration
	// MaxCommitBatch caps the entries per group-commit batch (0 = 512).
	MaxCommitBatch int
	// DisableGroupCommit forces the serial per-append path — one flush
	// (and in Sync mode one fsync) per record. Exists as the E9 ablation
	// baseline.
	DisableGroupCommit bool
	// FS is the filesystem the durability layer runs on; nil means the
	// process filesystem. Fault-injection tests substitute
	// internal/store/faultfs to exercise torn writes, fsync failures and
	// crash recovery.
	FS FS
	// SkipValidation disables model checking of incoming records.
	SkipValidation bool
	// DisableIndexes turns off secondary attribute indexes; lookups fall
	// back to scans. Exists for the index ablation (experiment E5).
	DisableIndexes bool
	// DisableSnapshots turns off the MVCC read path: no snapshots are
	// published and every reader falls back to taking the state RWMutex,
	// contending with writers exactly as the pre-snapshot store did.
	// Exists as the E10 ablation baseline.
	DisableSnapshots bool
	// DisableRuleIndexes turns off the graph's secondary indexes (class,
	// type and typed-adjacency posting lists) on the read path: filtered
	// node and edge lookups fall back to full-shard scans, which is what
	// rule binders paid before the indexes existed. Exists as the E11
	// ablation baseline.
	DisableRuleIndexes bool
	// DisableTiering turns the tiered-storage layer off: no segment scan
	// at Open, Compact never demotes, and reads never consult the cold
	// tier — the store keeps every trace in RAM, as it did before sealed
	// segments existed (ablation D12, experiment E15). Opening a
	// directory that already holds sealed segments with tiering disabled
	// leaves the sealed traces unreadable, so the flag is meant for fresh
	// ablation stores, not for toggling on live data.
	DisableTiering bool
	// SegmentColdAfter is the demotion policy: during Compact, a trace
	// whose last mutation is at least this many commits behind the
	// current sequence is sealed into an on-disk segment and dropped
	// from RAM. Zero disables automatic demotion; DemoteTraces still
	// seals explicitly.
	SegmentColdAfter uint64
	// SegmentCacheBytes caps the sealed-segment block cache (0 = 32 MiB).
	SegmentCacheBytes int64
	// SegmentBlockBytes is the target data-block size inside sealed
	// segments (0 = 64 KiB).
	SegmentBlockBytes int
	// DisableSegmentGC keeps every sealed segment on disk even when all
	// of its trace copies were promoted back, superseded by a newer
	// segment, or dropped by shard handoff. GC reclaims the space but
	// also deletes the older as-of versions those copies served; set
	// this to retain full point-in-time audit depth.
	DisableSegmentGC bool
}

var errClosed = errors.New("store: closed")

// ErrNoHistory is returned by TraceAsOf when neither the live state nor
// any sealed segment holds a version of the trace valid at the requested
// sequence.
var ErrNoHistory = errors.New("store: no trace state at or before the requested sequence")

// durabilityCounters tracks the write path's observable durability work.
type durabilityCounters struct {
	Fsyncs             atomic.Uint64
	SyncFailures       atomic.Uint64
	CommitBatches      atomic.Uint64
	GroupedCommits     atomic.Uint64
	MaxCommitBatch     atomic.Uint64
	Compactions        atomic.Uint64
	CompactionFailures atomic.Uint64
}

// snapCounters tracks the MVCC read path's observable work.
type snapCounters struct {
	publishes   atomic.Uint64
	readerLoads atomic.Uint64
}

// DurabilityStats is a snapshot of the durability layer's counters,
// served under "durability" in the HTTP /stats endpoint.
type DurabilityStats struct {
	// GroupCommit reports whether the batched commit pipeline is active.
	GroupCommit bool
	// Fsyncs counts log-file fsyncs issued by the commit path.
	Fsyncs uint64
	// SyncFailures counts fsyncs that returned an error.
	SyncFailures uint64
	// CommitBatches counts group-commit batches made durable.
	CommitBatches uint64
	// GroupedCommits counts entries committed through batches; divided by
	// CommitBatches it yields the achieved batching factor.
	GroupedCommits uint64
	// MaxCommitBatch is the largest batch committed so far.
	MaxCommitBatch uint64
	// Compactions counts completed log compactions.
	Compactions uint64
	// CompactionFailures counts compactions aborted by an error. An
	// aborted compaction loses nothing: appends continue on the side log
	// and recovery replays main + side.
	CompactionFailures uint64
	// ReplayDroppedBytes is the torn-tail byte count truncated during the
	// last Open.
	ReplayDroppedBytes int64
	// ReplaySkipped counts log entries skipped during the last Open
	// because they failed to apply (the original writer rejected them
	// too).
	ReplaySkipped int
}

// SnapshotStats is a snapshot of the MVCC read path's counters, served
// under "snapshots" in the HTTP /stats endpoint.
type SnapshotStats struct {
	// Enabled reports whether the copy-on-write snapshot read path is
	// active (false under the DisableSnapshots ablation).
	Enabled bool
	// Publishes counts snapshots published — one per commit on the
	// serial path, one per batch on the group-commit path.
	Publishes uint64
	// ReaderLoads counts lock-free snapshot pointer loads by readers.
	ReaderLoads uint64
	// CopiedShards / CopiedNodes / CopiedEdges count the copy-on-write
	// work writers did: trace shards (and the records inside them)
	// cloned because a published snapshot froze the previous version.
	// CopiedNodes/Publishes approximates the per-publish copy cost.
	CopiedShards uint64
	CopiedNodes  uint64
	CopiedEdges  uint64
}

// Store is the provenance store: the append-only row log, the in-memory
// provenance graph, secondary indexes, and the change feed.
//
// Reads are MVCC (design decision D7): every commit publishes an
// immutable snapshot of the full state through an atomic pointer, and
// readers run against the snapshot with no locking. The mu RWMutex still
// serializes writers against each other's state mutation and carries the
// whole read load only under the DisableSnapshots ablation.
type Store struct {
	opts Options
	fs   FS

	mu     sync.RWMutex
	graph  *provenance.Graph // working graph; the pointer itself is stable
	rows   *rowTable         // working row table; pointer stable
	idx    *indexSet         // working indexes; pointer stable
	seq    uint64
	closed bool

	// snap is the published snapshot readers load. Written only under
	// logMu (the commit boundary), so a loaded snapshot is always a
	// prefix-consistent batch boundary — never a torn batch. snapDirty
	// flags commits whose publication was deferred to the next read;
	// loadsAtPublish (guarded by logMu) is the reader-load count at the
	// last publish, used to detect write-only bursts.
	snap           atomic.Pointer[snapshot]
	snapDirty      atomic.Bool
	loadsAtPublish uint64
	snapCount      snapCounters

	logMu      sync.Mutex // serializes log writes and the compaction swap
	log        *logWriter
	compactGen uint64 // highest side-log generation created or folded

	compactMu sync.Mutex // one Compact at a time
	comm      *committer // group-commit pipeline (nil: in-memory or disabled)

	// tier is the sealed-segment cold tier (nil: in-memory store or the
	// DisableTiering ablation). lastTouch records the sequence of each
	// resident trace's last mutation — the demotion policy's coldness
	// signal and the validity bound for as-of reads; guarded by mu.
	tier      *tierManager
	lastTouch map[string]uint64

	stats         durabilityCounters
	replayDropped int64
	replaySkipped int

	subMu   sync.Mutex
	subs    map[int]*Subscription
	nextSub int
}

// Open opens (or creates) a store. When opts.Dir is non-empty the existing
// log — the main file plus any side logs a crashed or aborted compaction
// left behind — is replayed; torn tails are truncated silently, matching
// the at-most-one-batch loss the log format guarantees.
func Open(opts Options) (*Store, error) {
	if opts.Model == nil && !opts.SkipValidation {
		return nil, fmt.Errorf("store: Options.Model is required")
	}
	s := &Store{
		opts:      opts,
		fs:        opts.FS,
		graph:     provenance.NewGraph(),
		rows:      newRowTable(),
		idx:       newIndexSet(),
		subs:      make(map[int]*Subscription),
		lastTouch: make(map[string]uint64),
	}
	if s.fs == nil {
		s.fs = OSFS{}
	}
	if opts.Model != nil && !opts.DisableIndexes {
		for _, tf := range opts.Model.IndexedFields() {
			s.idx.declare(tf[0], tf[1])
		}
	}
	if opts.DisableRuleIndexes {
		s.graph.DisableIndexLookups()
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %v", err)
		}
		// A leftover snapshot scratch file is garbage from a compaction
		// that crashed before its atomic rename.
		if err := s.fs.Remove(tmpLogPath(opts.Dir)); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("store: %v", err)
		}
		// Load the cold tier before replay: sealed traces are absent from
		// the log by design, so reads that miss the replayed hot tier fall
		// through to the segments. Half-sealed files (crash mid-seal) are
		// removed here; their rows are still in the log.
		if !opts.DisableTiering {
			t, err := newTierManager(s.fs, opts.Dir, opts.SegmentCacheBytes)
			if err != nil {
				return nil, err
			}
			s.tier = t
		}
		active, err := s.replayAll()
		if err != nil {
			return nil, err
		}
		s.reconcileTiers()
		w, err := createOrOpenLog(s.fs, active, opts.Sync)
		if err != nil {
			return nil, fmt.Errorf("store: %v", err)
		}
		s.log = w
		if !opts.DisableGroupCommit {
			s.comm = newCommitter(s, opts.FlushWindow, opts.MaxCommitBatch)
		}
	}
	// Publish the initial snapshot (replayed state, or empty) so readers
	// never observe a nil pointer.
	if !opts.DisableSnapshots {
		s.forcePublishLocked()
	}
	return s, nil
}

// replayAll replays the main log and every live side log in generation
// order, removes stale side logs (already folded into the main log), and
// returns the path appends must continue on: the newest live side log if
// any survive, else the main log.
func (s *Store) replayAll() (activePath string, err error) {
	dir := s.opts.Dir
	apply := func(e entry) error {
		_, err := s.apply(e)
		return err
	}
	rr, err := replayLog(s.fs, logPath(dir), apply)
	if err != nil {
		return "", err
	}
	s.replayDropped = rr.dropped
	s.replaySkipped = rr.skipped
	s.compactGen = rr.folded

	gens, err := sideLogGens(s.fs, dir)
	if err != nil {
		return "", fmt.Errorf("store: listing side logs: %v", err)
	}
	activePath = logPath(dir)
	for _, gen := range gens {
		side := sideLogPath(dir, gen)
		if gen <= rr.folded {
			// Already folded into the main log by a compaction whose
			// rename committed but whose cleanup did not finish.
			if err := s.fs.Remove(side); err != nil && !os.IsNotExist(err) {
				return "", fmt.Errorf("store: removing stale side log: %v", err)
			}
			continue
		}
		srr, err := replayLog(s.fs, side, apply)
		if err != nil {
			return "", err
		}
		s.replayDropped += srr.dropped
		s.replaySkipped += srr.skipped
		s.compactGen = gen
		activePath = side
	}
	return activePath, nil
}

// reconcileTiers resolves hot/cold conflicts after replay, before the
// store goes live (single-threaded, so no locks). A resident trace whose
// version is BELOW its newest sealed copy's is the torn prefix of an
// interrupted promotion — the crash hit while the trace's base rows were
// re-entering the log — and the complete sealed copy wins: the partial
// hot shard is dropped so reads fall through to the segment. Completed
// promotions and compaction rewrites always replay with a version pin,
// so a legitimately hot trace compares >= its sealed copy.
func (s *Store) reconcileTiers() {
	if s.tier == nil || !s.tier.hasSegments() {
		return
	}
	dropped := false
	for _, app := range s.graph.AppIDs() {
		hot := s.graph.TraceVersion(app)
		_, tr, ok := s.tier.lookupTrace(app, 0)
		if !ok || tr.Ver <= hot {
			continue
		}
		var ids []string
		for _, n := range s.graph.Nodes(provenance.NodeFilter{AppID: app}) {
			s.idx.remove(n)
			ids = append(ids, n.ID)
		}
		for _, e := range s.graph.AllEdges(provenance.EdgeFilter{AppID: app}) {
			ids = append(ids, e.ID)
		}
		s.graph.DropTrace(app)
		s.graph.EvictRouting(ids)
		s.rows.dropApp(app)
		delete(s.lastTouch, app)
		dropped = true
	}
	if dropped {
		s.graph.Vacuum()
		s.rows.vacuum()
		s.idx.vacuum()
	}
	// Replay may have rebuilt handoff tombstones (opTraceDrop) whose
	// sealed copies a crash left unscrubbed; finish the scrub now. Open
	// runs single-threaded, so no compaction races the rewrite. On error
	// the tombstones stay and keep guarding lookups.
	_ = s.scrubDroppedLocked()
}

// Close flushes the log and stops every subscription.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	s.subMu.Lock()
	for _, sub := range s.subs {
		sub.stop()
	}
	s.subs = map[int]*Subscription{}
	s.subMu.Unlock()

	// Drain in-flight group commits before the log goes away.
	if s.comm != nil {
		s.comm.stop()
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.log != nil {
		err := s.log.close()
		s.log = nil
		return err
	}
	return nil
}

// PutNode validates, persists and indexes a new node record, then notifies
// the change feed.
func (s *Store) PutNode(n *provenance.Node) error {
	if err := s.checkNode(n); err != nil {
		return err
	}
	row, err := EncodeNode(n)
	if err != nil {
		return err
	}
	return s.commit(entry{op: opPutNode, row: row})
}

// UpdateNode replaces an existing node's attributes (enrichment). Identity
// fields (class, type, app ID) must not change.
func (s *Store) UpdateNode(n *provenance.Node) error {
	if err := s.checkNode(n); err != nil {
		return err
	}
	row, err := EncodeNode(n)
	if err != nil {
		return err
	}
	return s.commit(entry{op: opUpdateNode, row: row})
}

// PutEdge validates, persists and indexes a new relation record, then
// notifies the change feed.
func (s *Store) PutEdge(e *provenance.Edge) error {
	if !s.opts.SkipValidation {
		// Pre-validate against the working graph under the state lock
		// (not a snapshot): the write path must not trigger the read
		// barrier, and the working graph also sees batch-mates already
		// applied but not yet published. AddEdge re-checks authoritatively
		// at apply time. Endpoints missing from the hot tier may be
		// sealed — the commit below will promote the trace — so the cold
		// tier answers for them here.
		s.mu.RLock()
		src := s.graph.Node(e.Source)
		dst := s.graph.Node(e.Target)
		s.mu.RUnlock()
		if src == nil {
			src = s.coldNode(e.Source)
		}
		if dst == nil {
			dst = s.coldNode(e.Target)
		}
		if err := s.opts.Model.CheckEdge(e, src, dst); err != nil {
			return err
		}
	}
	row, err := EncodeEdge(e)
	if err != nil {
		return err
	}
	return s.commit(entry{op: opPutEdge, row: row})
}

// PutNodes validates, persists and indexes a run of node records as ONE
// commit unit: one log flush (and in Sync mode one shared fsync), one
// snapshot publish, one change-feed emission covering the whole run. The
// ingestion gateway's batcher workers use it to amortize the commit
// pipeline's per-record coordination across a coalesced event batch. The
// run is not transactional — each node stands or falls alone — and the
// returned slice aligns per-node errors with ns (nil entries succeeded).
func (s *Store) PutNodes(ns []*provenance.Node) []error {
	errs := make([]error, len(ns))
	entries := make([]entry, 0, len(ns))
	at := make([]int, 0, len(ns)) // entries[j] belongs to ns[at[j]]
	for i, n := range ns {
		if err := s.checkNode(n); err != nil {
			errs[i] = err
			continue
		}
		row, err := EncodeNode(n)
		if err != nil {
			errs[i] = err
			continue
		}
		entries = append(entries, entry{op: opPutNode, row: row})
		at = append(at, i)
	}
	if len(entries) == 0 {
		return errs
	}
	for j, err := range s.commitAll(entries) {
		errs[at[j]] = err
	}
	return errs
}

// commitAll makes a run of entries durable and applies them as one commit
// unit. Group-commit stores enqueue the run as a single request (one wait,
// one shared fsync); the serial path mirrors the committer's discipline
// under logMu — write every frame, flush once, fsync once, apply in order,
// publish one snapshot, emit the events. Per-entry errors align with
// entries; a log write/flush/fsync failure fails the whole run.
func (s *Store) commitAll(entries []entry) []error {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return errsAll(len(entries), errClosed)
	}
	if s.comm != nil {
		return s.comm.enqueueAll(entries)
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	var promos []*pendingPromo
	staged := map[string]bool{}
	if s.log != nil {
		var err error
		for _, e := range entries {
			var promo *pendingPromo
			if promo, err = s.stagePromotionLocked(e.row.AppID, staged); err != nil {
				break
			}
			if promo != nil {
				promos = append(promos, promo)
			}
			if err = s.log.writeEntry(e); err != nil {
				break
			}
		}
		if err == nil {
			err = s.log.flush()
		}
		if err == nil && s.log.sync {
			err = s.log.syncFile()
			s.stats.Fsyncs.Add(1)
			if err != nil {
				s.stats.SyncFailures.Add(1)
			}
		}
		if err != nil {
			return errsAll(len(entries), fmt.Errorf("store: log append: %v", err))
		}
	}
	if err := s.applyPromotionsLocked(promos); err != nil {
		return errsAll(len(entries), err)
	}
	errs := make([]error, len(entries))
	evs := make([]Event, 0, len(entries))
	for i, e := range entries {
		ev, err := s.apply(e)
		errs[i] = err
		if err == nil {
			evs = append(evs, ev)
		}
	}
	s.publishLocked()
	for _, ev := range evs {
		s.publish(ev)
	}
	return errs
}

func (s *Store) checkNode(n *provenance.Node) error {
	if s.opts.SkipValidation {
		return n.Validate()
	}
	return s.opts.Model.CheckNode(n)
}

// commit makes the entry durable in the log and applies it to the
// in-memory state. The log write happens first: a record is only visible
// once it is durable in the log's terms. Disk stores route through the
// group-commit pipeline (one flush+fsync+snapshot publish shared by a
// batch of concurrent writers) unless DisableGroupCommit forces the
// serial path.
func (s *Store) commit(e entry) error {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return errClosed
	}
	if s.comm != nil {
		return s.comm.enqueue(e)
	}
	// Serial path: logMu is held across the append, the in-memory apply,
	// the snapshot publish and the change-feed emit, so the log's entry
	// order always equals the order the state, the published snapshots
	// and the change feed observed — recovery then reproduces exactly
	// the final state even under concurrent conflicting updates. Lock
	// order is always logMu -> mu. The group committer preserves the same
	// invariant batch-wise.
	s.logMu.Lock()
	defer s.logMu.Unlock()
	// A write to a sealed, non-resident trace first promotes it: the
	// trace's base rows re-enter the log ahead of this entry so replay
	// stays self-contained, and the shard is restored so apply finds the
	// records the entry references. A trace tombstone must not promote —
	// it is removing the trace, not writing to it.
	var promo *pendingPromo
	var err error
	if e.op != opTraceDrop {
		if promo, err = s.stagePromotionLocked(e.row.AppID, map[string]bool{}); err != nil {
			return err
		}
	}
	if s.log != nil {
		if err := s.log.append(e); err != nil {
			return fmt.Errorf("store: log append: %v", err)
		}
		if s.log.sync {
			s.stats.Fsyncs.Add(1)
		}
	}
	if promo != nil {
		if err := s.applyPromotionsLocked([]*pendingPromo{promo}); err != nil {
			return err
		}
	}
	ev, err := s.apply(e)
	if err != nil {
		// A rejected apply left the state untouched; the published
		// snapshot is still current.
		return err
	}
	s.publishLocked()
	s.publish(ev)
	return nil
}

// apply mutates the in-memory working state and returns the change-feed
// event describing the mutation. It does NOT publish a snapshot or emit
// the event — the commit paths do both after the whole batch applied, so
// readers and subscribers only ever observe batch boundaries.
func (s *Store) apply(e entry) (Event, error) {
	if e.op == opTraceVer {
		// Version pin written by a trace promotion: the base rows replayed
		// just before it restarted the trace's version counter from the
		// row count; pin it back to the sealed value so versions survive
		// restarts. Never reaches the change feed.
		s.mu.Lock()
		defer s.mu.Unlock()
		if err := s.graph.SetTraceVersion(e.row.AppID, e.gen); err != nil {
			return Event{}, err
		}
		return Event{}, nil
	}
	if e.op == opTraceDrop {
		// Trace tombstone (shard handoff): remove the trace from every
		// hot-tier structure, exactly as reconcileTiers evicts a stale
		// shard, and tell the tier which sealed copies are now dead.
		// Dropping an absent trace is a no-op — replay may see the
		// tombstone after a compaction already rebuilt the dropped state.
		app := e.row.AppID
		s.mu.Lock()
		defer s.mu.Unlock()
		var ids []string
		for _, n := range s.graph.Nodes(provenance.NodeFilter{AppID: app}) {
			s.idx.remove(n)
			ids = append(ids, n.ID)
		}
		for _, ed := range s.graph.AllEdges(provenance.EdgeFilter{AppID: app}) {
			ids = append(ids, ed.ID)
		}
		s.graph.DropTrace(app)
		s.graph.EvictRouting(ids)
		s.rows.dropApp(app)
		delete(s.lastTouch, app)
		s.seq++
		if s.tier != nil {
			s.tier.markDropped(app, e.gen)
		}
		return Event{}, nil
	}
	n, ed, err := DecodeRow(e.row)
	if err != nil {
		return Event{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var ev Event
	switch e.op {
	case opPutNode:
		if n == nil {
			return Event{}, fmt.Errorf("store: put-node entry decoded to non-node %s", e.row.ID)
		}
		if err := s.graph.AddNode(n); err != nil {
			return Event{}, err
		}
		s.idx.add(n)
		ev.Kind, ev.Node = EventNode, n
	case opUpdateNode:
		if n == nil {
			return Event{}, fmt.Errorf("store: update entry decoded to non-node %s", e.row.ID)
		}
		old := s.graph.Node(n.ID)
		if err := s.graph.UpdateNode(n); err != nil {
			return Event{}, err
		}
		s.idx.remove(old)
		s.idx.add(n)
		ev.Kind, ev.Node, ev.Prev = EventNodeUpdate, n, old
	case opPutEdge:
		if ed == nil {
			return Event{}, fmt.Errorf("store: put-edge entry decoded to non-edge %s", e.row.ID)
		}
		if err := s.graph.AddEdge(ed); err != nil {
			return Event{}, err
		}
		ev.Kind, ev.Edge = EventEdge, ed
	}
	s.rows.put(e.row)
	s.seq++
	ev.Seq = s.seq
	// Every mutating commit bumps the touched trace's monotonic version
	// (maintained inside the graph's trace shard): the continuous-checking
	// cache keys results by it, so "unchanged trace" is decidable without
	// comparing graphs. Replay bumps too, so a recovered store reports the
	// same versions the writer saw. The event carries the post-commit
	// version.
	if app := e.row.AppID; app != "" {
		ev.TraceVersion = s.graph.TraceVersion(app)
		s.lastTouch[app] = s.seq
	}
	return ev, nil
}

// pendingPromo is a staged trace promotion: its base frames are already
// buffered in the log, but the in-memory restoration waits until the
// batch they share a flush/fsync with is durable — otherwise a failed
// flush would leave the trace resident while the log lacks its rows, and
// a later commit would skip re-logging it.
type pendingPromo struct {
	app   string
	ver   uint64
	rows  []entry
	nodes []*provenance.Node
	edges []*provenance.Edge
}

// stagePromotionLocked checks whether app is sealed-but-not-resident and,
// if so, buffers its base rows plus an opTraceVer pin into the log ahead
// of the delta entry about to commit, returning the staged promotion for
// applyPromotionsLocked. staged dedups within one batch. Caller holds
// logMu.
func (s *Store) stagePromotionLocked(app string, staged map[string]bool) (*pendingPromo, error) {
	if s.tier == nil || app == "" || staged[app] || !s.tier.hasSegments() {
		return nil, nil
	}
	s.mu.RLock()
	resident := s.graph.TraceVersion(app) != 0
	s.mu.RUnlock()
	if resident {
		return nil, nil
	}
	seg, tr, ok := s.tier.lookupTrace(app, 0)
	if !ok {
		return nil, nil // genuinely new trace
	}
	rows, err := s.tier.traceRows(seg, tr)
	if err != nil {
		return nil, fmt.Errorf("store: promoting trace %s: %v", app, err)
	}
	nodes, edges, err := decodeTrace(rows)
	if err != nil {
		return nil, fmt.Errorf("store: promoting trace %s: %v", app, err)
	}
	if s.log != nil {
		for _, e := range rows {
			if err := s.log.writeEntry(e); err != nil {
				return nil, fmt.Errorf("store: promoting trace %s: %v", app, err)
			}
		}
		pin := entry{op: opTraceVer, row: Row{AppID: app}, gen: tr.Ver}
		if err := s.log.writeEntry(pin); err != nil {
			return nil, fmt.Errorf("store: promoting trace %s: %v", app, err)
		}
	}
	staged[app] = true
	return &pendingPromo{app: app, ver: tr.Ver, rows: rows, nodes: nodes, edges: edges}, nil
}

// applyPromotionsLocked restores staged promotions into the hot tier
// after their log frames are durable. Runs before the batch's delta
// entries apply, so an edge landing on a freshly promoted trace finds its
// endpoints resident. Caller holds logMu.
func (s *Store) applyPromotionsLocked(promos []*pendingPromo) error {
	for _, p := range promos {
		if p == nil {
			continue
		}
		s.mu.Lock()
		err := s.graph.RestoreTrace(p.app, p.nodes, p.edges, p.ver)
		if err == nil {
			for _, e := range p.rows {
				s.rows.put(e.row)
			}
			for _, n := range p.nodes {
				s.idx.add(n)
			}
			s.lastTouch[p.app] = s.seq
		}
		s.mu.Unlock()
		if err != nil {
			return fmt.Errorf("store: promoting trace %s: %v", p.app, err)
		}
		s.tier.promoted.Add(1)
	}
	return nil
}

// publishLocked makes the batch that just applied visible to readers.
// The caller holds logMu — the only context that mutates state — so the
// published snapshot is always a clean commit (batch) boundary. No-op
// under the DisableSnapshots ablation.
//
// Publication is deferred behind a read barrier: if no reader consumed
// the currently published snapshot, the commit only marks the state
// dirty and the first subsequent read publishes (forcePublishLocked via
// loadSnap). A long write-only burst therefore pays one copy-on-write
// epoch in total instead of one per commit — without this, N sequential
// commits to one trace clone the trace's shard N times (quadratic).
// Read-your-writes still holds: a write is acknowledged only after the
// dirty mark (or publish), so any later read observes it.
func (s *Store) publishLocked() {
	if s.opts.DisableSnapshots {
		return
	}
	if s.snapCount.readerLoads.Load() == s.loadsAtPublish {
		s.snapDirty.Store(true)
		return
	}
	s.forcePublishLocked()
}

// forcePublishLocked unconditionally publishes a fresh immutable
// snapshot of the working state. Caller holds logMu.
func (s *Store) forcePublishLocked() {
	s.snap.Store(&snapshot{
		graph: s.graph.Snapshot(),
		rows:  s.rows.snapshot(),
		idx:   s.idx.snapshot(),
		seq:   s.seq,
	})
	s.snapDirty.Store(false)
	s.loadsAtPublish = s.snapCount.readerLoads.Load()
	s.snapCount.publishes.Add(1)
}

// loadSnap returns the published snapshot, or nil when the ablation
// forces the locking read path. When deferred commits are pending (see
// publishLocked) it first publishes them — the read barrier. The common
// case under active reading stays one atomic load with no locks: eager
// publication resumes as soon as the reader-load counter moves.
func (s *Store) loadSnap() *snapshot {
	if s.opts.DisableSnapshots {
		return nil
	}
	s.snapCount.readerLoads.Add(1)
	if s.snapDirty.Load() {
		s.logMu.Lock()
		if s.snapDirty.Load() {
			s.forcePublishLocked()
		}
		s.logMu.Unlock()
	}
	return s.snap.Load()
}

// ReadTx is a consistent read-only view of the whole store state: graph,
// row table and secondary indexes all from the same published snapshot.
// Obtained through Store.ReadTx; valid only within the callback (under
// the DisableSnapshots ablation it aliases the locked working state).
type ReadTx struct {
	g    *provenance.Graph
	rows *rowTable
	idx  *indexSet
	seq  uint64
}

// Graph returns the view's provenance graph.
func (tx ReadTx) Graph() *provenance.Graph { return tx.g }

// Seq returns the commit sequence number the view corresponds to.
func (tx ReadTx) Seq() uint64 { return tx.seq }

// LookupByAttr is Store.LookupByAttr against this view: index and graph
// are guaranteed to be the same version, so an index hit can be resolved
// against the graph without a torn read. The scan fallback (field not
// declared indexed in the model) enumerates candidates through the
// graph's type posting lists instead of filtering every node.
func (tx ReadTx) LookupByAttr(typ, field string, v provenance.Value) ([]string, bool) {
	if ids, ok := tx.idx.lookup(typ, field, v); ok {
		return ids, true
	}
	var res []string
	for _, n := range tx.g.NodesByType("", typ) {
		if n.Attr(field).Equal(v) {
			res = append(res, n.ID)
		}
	}
	return res, false
}

// ReadTx runs fn with a consistent view of graph, rows and indexes. With
// snapshots enabled this is one atomic pointer load and fn runs lock-free
// against the immutable snapshot; under the ablation fn runs under the
// state read lock.
func (s *Store) ReadTx(fn func(tx ReadTx) error) error {
	return s.readTx(fn)
}

func (s *Store) readTx(fn func(tx ReadTx) error) error {
	if snap := s.loadSnap(); snap != nil {
		return fn(ReadTx{g: snap.graph, rows: snap.rows, idx: snap.idx, seq: snap.seq})
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return fn(ReadTx{g: s.graph, rows: s.rows, idx: s.idx, seq: s.seq})
}

// View runs fn with read access to the provenance graph. The graph fn
// receives is an immutable published snapshot: fn (and anything it hands
// the graph to) may retain it indefinitely and read it concurrently with
// writers — it simply stops receiving updates. Snapshot isolation is
// prefix-consistent: a snapshot always sits on a commit boundary (batch
// boundary under group commit), never inside a torn batch. Only under
// the DisableSnapshots ablation does the old contract apply: the graph
// is the locked working state and must not be retained past fn's return.
func (s *Store) View(fn func(g *provenance.Graph) error) error {
	if snap := s.loadSnap(); snap != nil {
		return fn(snap.graph)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return fn(s.graph)
}

// TraceVersion returns the monotonic version of one trace: the number of
// mutating commits (node puts, updates, edge puts) that touched it. Zero
// means the trace has never been written. Versions strictly increase with
// every commit to the trace, so equal versions imply an unchanged trace.
func (s *Store) TraceVersion(appID string) uint64 {
	var ver uint64
	if snap := s.loadSnap(); snap != nil {
		ver = snap.graph.TraceVersion(appID)
	} else {
		s.mu.RLock()
		ver = s.graph.TraceVersion(appID)
		s.mu.RUnlock()
	}
	if ver == 0 {
		// Not resident: a sealed copy still answers with the version the
		// trace was demoted at, so version-keyed caches stay valid across
		// demotion.
		if _, tr, ok := s.coldLookup(appID); ok {
			return tr.Ver
		}
	}
	return ver
}

// ViewTrace runs fn with read access to the graph together with the
// version of one trace, observed atomically in the same snapshot (same
// lock under the ablation). Use it when a computation over the trace must
// be tagged with the exact version it saw (the continuous-checking result
// cache). The retention semantics match View: the snapshot graph may be
// retained past fn's return.
// When the trace is not resident in the hot tier, the cold tier serves
// it: fn receives a read-only graph materialized from the trace's sealed
// segment, carrying the version the trace was demoted at.
func (s *Store) ViewTrace(appID string, fn func(g *provenance.Graph, version uint64) error) error {
	if snap := s.loadSnap(); snap != nil {
		if ver := snap.graph.TraceVersion(appID); ver != 0 {
			return fn(snap.graph, ver)
		}
		if g, ver, ok := s.coldTrace(appID); ok {
			return fn(g, ver)
		}
		return fn(snap.graph, 0)
	}
	s.mu.RLock()
	if ver := s.graph.TraceVersion(appID); ver != 0 || s.tier == nil {
		defer s.mu.RUnlock()
		return fn(s.graph, ver)
	}
	s.mu.RUnlock()
	if g, ver, ok := s.coldTrace(appID); ok {
		return fn(g, ver)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return fn(s.graph, s.graph.TraceVersion(appID))
}

// coldLookup finds the newest sealed copy of a trace, gated on the tier
// actually holding segments.
func (s *Store) coldLookup(appID string) (*segment, segTrace, bool) {
	if s.tier == nil || !s.tier.hasSegments() {
		return nil, segTrace{}, false
	}
	return s.tier.lookupTrace(appID, 0)
}

// coldTrace materializes the newest sealed copy of a trace as a frozen
// read-only graph. A segment read error degrades to "absent": the caller
// then reports the trace missing rather than failing the read — segments
// are CRC-checked, so a bad read can only miss data, never invent it.
func (s *Store) coldTrace(appID string) (*provenance.Graph, uint64, bool) {
	seg, tr, ok := s.coldLookup(appID)
	if !ok {
		return nil, 0, false
	}
	g, err := s.tier.materialize(seg, tr)
	if err != nil {
		return nil, 0, false
	}
	return g, tr.Ver, true
}

// coldOwner resolves which trace owns a demoted record ID: the router
// fast path when the ID was demoted this session and a read raced the
// eviction, otherwise the segments' row-ID bloom filters — the only
// route that works after a restart, when the rewritten log never told
// the router about sealed traces.
func (s *Store) coldOwner(id string) (string, bool) {
	if app, ok := s.graph.TraceHint(id); ok {
		return app, true
	}
	return s.tier.ownerOf(id)
}

// coldNode resolves a record ID against the cold tier; the owning
// trace's materialized graph serves the record.
func (s *Store) coldNode(id string) *provenance.Node {
	if s.tier == nil || !s.tier.hasSegments() {
		return nil
	}
	app, ok := s.coldOwner(id)
	if !ok {
		return nil
	}
	if g, _, ok := s.coldTrace(app); ok {
		return g.Node(id)
	}
	return nil
}

// coldEdge is coldNode for relation records.
func (s *Store) coldEdge(id string) *provenance.Edge {
	if s.tier == nil || !s.tier.hasSegments() {
		return nil
	}
	app, ok := s.coldOwner(id)
	if !ok {
		return nil
	}
	if g, _, ok := s.coldTrace(app); ok {
		return g.Edge(id)
	}
	return nil
}

// TraceAsOf returns a read-only graph of one trace as it stood at commit
// sequence seq, together with the trace version of that state. The live
// state serves when its last mutation is at or before seq; otherwise the
// newest sealed copy old enough qualifies — sealed segments are the
// durable history that makes the MVCC snapshots auditable after the
// fact. ErrNoHistory means no state that old survives (the trace never
// existed then, or its history was never sealed). Sequence numbers are
// the store session's commit sequence, as exposed by Stats().Seq and the
// change feed.
func (s *Store) TraceAsOf(appID string, seq uint64) (*provenance.Graph, uint64, error) {
	var g *provenance.Graph
	var ver, last uint64
	if snap := s.loadSnap(); snap != nil {
		if ver = snap.graph.TraceVersion(appID); ver != 0 {
			s.mu.RLock()
			last = s.lastTouch[appID]
			s.mu.RUnlock()
			g = snap.graph
		}
	} else {
		s.mu.RLock()
		if ver = s.graph.TraceVersion(appID); ver != 0 {
			last = s.lastTouch[appID]
			g = s.graph.Trace(appID) // detach from the locked working state
		}
		s.mu.RUnlock()
	}
	if g != nil && last <= seq {
		return g.Trace(appID), ver, nil
	}
	if s.tier != nil && s.tier.hasSegments() {
		if seg, tr, ok := s.tier.lookupTrace(appID, seq); ok {
			cg, err := s.tier.materialize(seg, tr)
			if err != nil {
				return nil, 0, err
			}
			return cg, tr.Ver, nil
		}
	}
	return nil, 0, ErrNoHistory
}

// Node returns the node record, or nil when absent. The record is shared
// with the store's immutable state and must be treated as read-only;
// callers that want to mutate (e.g. to build an enrichment update) must
// Clone first.
func (s *Store) Node(id string) *provenance.Node {
	var n *provenance.Node
	if snap := s.loadSnap(); snap != nil {
		n = snap.graph.Node(id)
	} else {
		s.mu.RLock()
		n = s.graph.Node(id)
		s.mu.RUnlock()
	}
	if n == nil {
		n = s.coldNode(id)
	}
	return n
}

// Edge returns the edge record, or nil when absent. Read-only, like Node.
func (s *Store) Edge(id string) *provenance.Edge {
	var e *provenance.Edge
	if snap := s.loadSnap(); snap != nil {
		e = snap.graph.Edge(id)
	} else {
		s.mu.RLock()
		e = s.graph.Edge(id)
		s.mu.RUnlock()
	}
	if e == nil {
		e = s.coldEdge(id)
	}
	return e
}

// Row returns the stored Table-1 row for a record ID, hot tier first and
// sealed segments second.
func (s *Store) Row(id string) (Row, bool) {
	var (
		r  Row
		ok bool
	)
	s.readTx(func(tx ReadTx) error {
		if app, found := tx.g.TraceOf(id); found {
			r, ok = tx.rows.get(app, id)
		}
		return nil
	})
	if ok {
		return r, true
	}
	return s.coldRow(id)
}

// coldRow serves Row from a trace's sealed copy.
func (s *Store) coldRow(id string) (Row, bool) {
	if s.tier == nil || !s.tier.hasSegments() {
		return Row{}, false
	}
	app, ok := s.coldOwner(id)
	if !ok {
		return Row{}, false
	}
	seg, tr, ok := s.tier.lookupTrace(app, 0)
	if !ok {
		return Row{}, false
	}
	rows, err := s.tier.traceRows(seg, tr)
	if err != nil {
		return Row{}, false
	}
	for _, e := range rows {
		if e.row.ID == id {
			return e.row, true
		}
	}
	return Row{}, false
}

// RowsForApp returns every row of one trace, sorted by record ID. This is
// the query the paper's Table 1 illustrates: all provenance entities of an
// execution trace. A demoted trace answers from its sealed segment.
func (s *Store) RowsForApp(appID string) []Row {
	var res []Row
	s.readTx(func(tx ReadTx) error {
		res = tx.rows.forApp(appID)
		return nil
	})
	if len(res) != 0 || s.tier == nil || !s.tier.hasSegments() {
		return res
	}
	seg, tr, ok := s.tier.lookupTrace(appID, 0)
	if !ok {
		return res
	}
	rows, err := s.tier.traceRows(seg, tr)
	if err != nil {
		return res
	}
	res = make([]Row, 0, len(rows))
	for _, e := range rows {
		res = append(res, e.row)
	}
	sort.Slice(res, func(i, j int) bool { return res[i].ID < res[j].ID })
	return res
}

// LookupByAttr returns the IDs of nodes of the given type whose field
// equals the value. It uses the secondary index when one is declared,
// otherwise it scans. The second result reports whether an index was used
// (surfaced by EXPLAIN in the query engine). The returned slice is
// immutable and must not be modified.
func (s *Store) LookupByAttr(typ, field string, v provenance.Value) ([]string, bool) {
	var (
		res  []string
		used bool
	)
	s.readTx(func(tx ReadTx) error {
		res, used = tx.LookupByAttr(typ, field, v)
		return nil
	})
	return res, used
}

// Stats summarizes the store contents.
type Stats struct {
	Nodes     int
	Edges     int
	Rows      int
	Seq       uint64
	Indexes   int
	Snapshots SnapshotStats
	// RuleIndexes counts graph secondary-index hits versus scans; the
	// working graph and all snapshots share one counter set.
	RuleIndexes provenance.IndexStats
	// RuleIndexesEnabled is false under the DisableRuleIndexes ablation.
	RuleIndexesEnabled bool
	// ResidentTraces counts the traces currently held in RAM; with
	// tiering on, Tiering carries the sealed side of the split.
	ResidentTraces int
	// Tiering is the tiered-storage layer's state (Enabled=false when the
	// store is in-memory or the D12 ablation is on).
	Tiering TieringStats
}

// Stats returns current store statistics. Nodes/Edges/Rows count the hot
// tier only; sealed traces are under Tiering.
func (s *Store) Stats() Stats {
	var st Stats
	s.readTx(func(tx ReadTx) error {
		st = Stats{
			Nodes:          tx.g.NumNodes(),
			Edges:          tx.g.NumEdges(),
			Rows:           tx.rows.count,
			Seq:            tx.seq,
			Indexes:        tx.idx.size(),
			ResidentTraces: tx.g.NumTraces(),
		}
		return nil
	})
	st.Snapshots = s.SnapshotCounters()
	st.RuleIndexes = s.graph.IndexStats()
	st.RuleIndexesEnabled = !s.opts.DisableRuleIndexes
	if s.tier != nil {
		st.Tiering = s.tier.stats(st.ResidentTraces)
	}
	return st
}

// Tiering returns the tiered-storage layer's counters. The zero value
// (Enabled=false) means no cold tier exists: the store is in-memory or
// running the DisableTiering ablation.
func (s *Store) Tiering() TieringStats {
	if s.tier == nil {
		return TieringStats{}
	}
	var resident int
	s.readTx(func(tx ReadTx) error {
		resident = tx.g.NumTraces()
		return nil
	})
	return s.tier.stats(resident)
}

// Segments lists the sealed segments on disk, ascending by ID. Nil when
// tiering is off.
func (s *Store) Segments() []SegmentInfo {
	if s.tier == nil {
		return nil
	}
	return s.tier.segments()
}

// SnapshotCounters returns the MVCC read path's counters. The working
// graph pointer is stable for the store's lifetime, so the copy counters
// (atomics inside the graph) are read without locks.
func (s *Store) SnapshotCounters() SnapshotStats {
	cs := s.graph.CopyStats()
	return SnapshotStats{
		Enabled:      !s.opts.DisableSnapshots,
		Publishes:    s.snapCount.publishes.Load(),
		ReaderLoads:  s.snapCount.readerLoads.Load(),
		CopiedShards: cs.Shards,
		CopiedNodes:  cs.Nodes,
		CopiedEdges:  cs.Edges,
	}
}

// Durability returns a snapshot of the durability layer's counters.
func (s *Store) Durability() DurabilityStats {
	return DurabilityStats{
		GroupCommit:        s.comm != nil,
		Fsyncs:             s.stats.Fsyncs.Load(),
		SyncFailures:       s.stats.SyncFailures.Load(),
		CommitBatches:      s.stats.CommitBatches.Load(),
		GroupedCommits:     s.stats.GroupedCommits.Load(),
		MaxCommitBatch:     s.stats.MaxCommitBatch.Load(),
		Compactions:        s.stats.Compactions.Load(),
		CompactionFailures: s.stats.CompactionFailures.Load(),
		ReplayDroppedBytes: s.replayDropped,
		ReplaySkipped:      s.replaySkipped,
	}
}

// AppIDs lists the distinct traces in the store: resident traces plus
// every trace sealed in the cold tier, deduplicated and sorted.
func (s *Store) AppIDs() []string {
	var ids []string
	s.readTx(func(tx ReadTx) error {
		ids = tx.g.AppIDs()
		return nil
	})
	if s.tier == nil || !s.tier.hasSegments() {
		return ids
	}
	sealed, err := s.tier.apps()
	if err != nil || len(sealed) == 0 {
		return ids
	}
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		seen[id] = true
	}
	for _, id := range sealed {
		if !seen[id] {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// Model returns the data model the store validates against (may be nil
// when SkipValidation is set).
func (s *Store) Model() *provenance.Model { return s.opts.Model }

// Compact rewrites the disk log to contain exactly the current state:
// every node row first, then every edge row, update chains collapsed to
// the latest version. No-op for in-memory stores.
//
// The rewrite is crash-safe and runs concurrently with writers:
//
//  1. A brief pause under logMu snapshots the row table and redirects
//     appends to a fresh side log (generation G). With the MVCC read
//     path on, "snapshots the row table" is one pointer load — the
//     published snapshot IS the log's content at this quiescent point —
//     so the pause does not scale with store size and concurrent
//     snapshot readers are never blocked.
//  2. With no locks held, the snapshot is written to a scratch file
//     headed by a marker frame recording "side generations ≤ G folded",
//     then fsynced.
//  3. A second brief pause folds the side log's frames into the scratch
//     file, fsyncs it, and atomically renames it over the main log — the
//     single commit point — then fsyncs the directory and cleans up.
//
// A crash before the rename leaves the old main log plus the side log
// (recovery replays both, in order); a crash after it leaves the new main
// log whose marker proves the side log is stale (recovery deletes it). An
// error aborts the compaction without data loss: the scratch file is
// removed and appends simply continue on the side log.
//
// With tiering on and SegmentColdAfter set, Compact also demotes: traces
// whose last mutation is at least SegmentColdAfter commits behind the
// current sequence are sealed into a new on-disk segment and their rows
// are excluded from the rewritten log — the segment, validated before the
// rename commits it, becomes their durable home and the hot tier drops
// them. The rename stays the single commit point for both the log rewrite
// and the demotion.
func (s *Store) Compact() error {
	var selectCold func(app string, last, cur uint64) bool
	if s.tier != nil && s.opts.SegmentColdAfter > 0 {
		coldAfter := s.opts.SegmentColdAfter
		selectCold = func(app string, last, cur uint64) bool {
			return cur >= last && cur-last >= coldAfter
		}
	}
	return s.compact(selectCold)
}

// DemoteTraces seals the named traces into a segment immediately,
// regardless of the SegmentColdAfter policy, by running a compaction with
// a membership selector. Traces not resident in the hot tier are ignored.
func (s *Store) DemoteTraces(apps ...string) error {
	if s.tier == nil {
		return errors.New("store: tiering is disabled")
	}
	if s.opts.DisableSnapshots {
		return errors.New("store: demotion requires the snapshot read path")
	}
	want := make(map[string]bool, len(apps))
	for _, a := range apps {
		want[a] = true
	}
	return s.compact(func(app string, last, cur uint64) bool { return want[app] })
}

// compact implements Compact and DemoteTraces. selectCold, when non-nil,
// picks the resident traces to demote into a sealed segment as part of
// the rewrite; nil compacts without demoting. Demotion needs the frozen
// snapshot the MVCC read path publishes, so the DisableSnapshots ablation
// never demotes.
func (s *Store) compact(selectCold func(app string, last, cur uint64) bool) error {
	if s.opts.Dir == "" {
		return nil
	}
	if s.tier == nil || s.opts.DisableSnapshots {
		selectCold = nil
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	dir := s.opts.Dir
	fsys := s.fs

	// Phase 1: freeze the current log at a quiescent point (logMu held, so
	// no commit is mid-flight and the in-memory state equals the log) and
	// redirect appends to a fresh side log.
	s.logMu.Lock()
	if s.log == nil {
		s.logMu.Unlock()
		return errClosed
	}
	if err := s.log.flush(); err != nil {
		s.logMu.Unlock()
		return fmt.Errorf("store: compact: %v", err)
	}
	if s.opts.Sync {
		if err := s.log.syncFile(); err != nil {
			s.logMu.Unlock()
			return fmt.Errorf("store: compact: %v", err)
		}
	}
	gen := s.compactGen + 1
	side, err := createOrOpenLog(fsys, sideLogPath(dir, gen), s.opts.Sync)
	if err != nil {
		s.logMu.Unlock()
		return fmt.Errorf("store: compact: opening side log: %v", err)
	}
	if s.opts.Sync {
		if err := syncParentDir(fsys, logPath(dir)); err != nil {
			side.close()
			fsys.Remove(sideLogPath(dir, gen))
			s.logMu.Unlock()
			return fmt.Errorf("store: compact: %v", err)
		}
	}
	frozen := s.log
	s.log = side
	s.compactGen = gen

	var entries []entry
	var nNodes int
	// Demotion state, captured at the freeze point: which traces are cold,
	// their rows diverted out of the rewrite, and the version each was
	// sealed at (phase 3 re-checks it to spot traces written during the
	// compaction).
	var (
		sealSeq uint64
		coldEnt map[string][]entry
		verAt   map[string]uint64
		lastAt  map[string]uint64
		hotVers map[string]uint64 // freeze-time version of every trace kept hot
	)
	if !s.opts.DisableSnapshots {
		// Grab the current snapshot's row table — O(1) under logMu; the
		// entry list is built lock-free below. Deferred commits must be
		// published first so the snapshot equals the frozen log.
		if s.snapDirty.Load() {
			s.forcePublishLocked()
		}
		snap := s.snap.Load()
		rows := snap.rows
		hotVers = map[string]uint64{}
		for _, app := range snap.graph.AppIDs() {
			hotVers[app] = snap.graph.TraceVersion(app)
		}
		var cold map[string]bool
		if selectCold != nil {
			sealSeq = snap.seq
			s.mu.RLock()
			lastAt = make(map[string]uint64, len(s.lastTouch))
			for app, last := range s.lastTouch {
				lastAt[app] = last
			}
			s.mu.RUnlock()
			cold = map[string]bool{}
			verAt = map[string]uint64{}
			for app, last := range lastAt {
				if ver := snap.graph.TraceVersion(app); ver != 0 && selectCold(app, last, sealSeq) {
					cold[app] = true
					verAt[app] = ver
				}
			}
		}
		s.logMu.Unlock()
		entries = make([]entry, 0, rows.count)
		coldEnt = map[string][]entry{}
		rows.each(func(r Row) {
			if r.Class != provenance.ClassRelation.String() {
				if cold[r.AppID] {
					coldEnt[r.AppID] = append(coldEnt[r.AppID], entry{op: opPutNode, row: r})
				} else {
					entries = append(entries, entry{op: opPutNode, row: r})
				}
			}
		})
		nNodes = len(entries)
		rows.each(func(r Row) {
			if r.Class == provenance.ClassRelation.String() {
				if cold[r.AppID] {
					coldEnt[r.AppID] = append(coldEnt[r.AppID], entry{op: opPutEdge, row: r})
				} else {
					entries = append(entries, entry{op: opPutEdge, row: r})
				}
			}
		})
	} else {
		// Ablation: copy the working row table under the state lock, as
		// the pre-snapshot store did.
		s.mu.RLock()
		hotVers = map[string]uint64{}
		for _, app := range s.graph.AppIDs() {
			hotVers[app] = s.graph.TraceVersion(app)
		}
		entries = make([]entry, 0, s.rows.count)
		s.rows.each(func(r Row) {
			if r.Class != provenance.ClassRelation.String() {
				entries = append(entries, entry{op: opPutNode, row: r})
			}
		})
		nNodes = len(entries)
		s.rows.each(func(r Row) {
			if r.Class == provenance.ClassRelation.String() {
				entries = append(entries, entry{op: opPutEdge, row: r})
			}
		})
		s.mu.RUnlock()
		s.logMu.Unlock()
	}

	// The frozen log never receives another byte; release its handle now.
	// Its file stays on disk until the rename (main) or cleanup (side).
	if err := frozen.close(); err != nil {
		return s.compactAbort(fmt.Errorf("store: compact: closing frozen log: %v", err))
	}

	// Seal the cold traces into a new segment before the scratch log is
	// even created: the file is written, fsynced and re-validated through
	// openSegment here, so any structural failure aborts the compaction
	// while the log still holds every row. segPath is cleared once the
	// rename commits; until then every abort removes the orphan file.
	var (
		seg       *segment
		segPath   string
		coldNodes map[string][]*provenance.Node
	)
	abort := func(err error) error {
		if segPath != "" {
			fsys.Remove(segPath)
		}
		return s.compactAbort(err)
	}
	if len(coldEnt) > 0 {
		demote := make([]segTraceRows, 0, len(coldEnt))
		coldNodes = make(map[string][]*provenance.Node, len(coldEnt))
		for app, es := range coldEnt {
			nn := 0
			for _, e := range es {
				if e.op == opPutNode {
					nn++
				}
			}
			sort.Slice(es[:nn], func(i, j int) bool { return es[i].row.ID < es[j].row.ID })
			sort.Slice(es[nn:], func(i, j int) bool { return es[nn+i].row.ID < es[nn+j].row.ID })
			nodes, edges, err := decodeTrace(es)
			if err != nil {
				return abort(fmt.Errorf("store: compact: sealing %s: %v", app, err))
			}
			coldNodes[app] = nodes
			classSeen, typeSeen := map[string]bool{}, map[string]bool{}
			for _, e := range es {
				classSeen[e.row.Class] = true
			}
			for _, n := range nodes {
				typeSeen[n.Type] = true
			}
			for _, ed := range edges {
				typeSeen[ed.Type] = true
			}
			tr := segTraceRows{app: app, ver: verAt[app], last: lastAt[app], rows: es}
			for c := range classSeen {
				tr.classes = append(tr.classes, c)
			}
			for t := range typeSeen {
				tr.types = append(tr.types, t)
			}
			demote = append(demote, tr)
		}
		id := s.tier.allocID()
		segPath = segmentPath(dir, id)
		if _, err := writeSegment(fsys, segPath, sealSeq, demote, s.opts.SegmentBlockBytes); err != nil {
			segPath = "" // writeSegment removed its own partial file
			return abort(fmt.Errorf("store: compact: sealing segment: %v", err))
		}
		if err := syncParentDir(fsys, segPath); err != nil {
			return abort(fmt.Errorf("store: compact: fsync segments dir: %v", err))
		}
		var err error
		if seg, err = openSegment(fsys, segPath, id); err != nil {
			return abort(fmt.Errorf("store: compact: validating sealed segment: %v", err))
		}
	}

	// Phase 2: write the snapshot to the scratch file — no store locks
	// held, writers are appending to the side log in parallel.
	sort.Slice(entries[:nNodes], func(i, j int) bool { return entries[i].row.ID < entries[j].row.ID })
	sort.Slice(entries[nNodes:], func(i, j int) bool {
		return entries[nNodes+i].row.ID < entries[nNodes+j].row.ID
	})
	tmp := tmpLogPath(dir)
	if err := fsys.Remove(tmp); err != nil && !os.IsNotExist(err) {
		return abort(fmt.Errorf("store: compact: %v", err))
	}
	tw, err := createOrOpenLog(fsys, tmp, false)
	if err != nil {
		fsys.Remove(tmp) // created-but-unwritable scratch must not linger
		return abort(fmt.Errorf("store: compact: %v", err))
	}
	cleanupTmp := func(err error) error {
		tw.close()
		fsys.Remove(tmp)
		return abort(err)
	}
	if err := tw.writeEntry(entry{op: opCompactMark, gen: gen}); err != nil {
		return cleanupTmp(fmt.Errorf("store: compact: %v", err))
	}
	for _, e := range entries {
		if err := tw.writeEntry(e); err != nil {
			return cleanupTmp(fmt.Errorf("store: compact: %v", err))
		}
	}
	// Pin every hot trace to its freeze-time version: the rewrite
	// collapsed update chains, so without the pins a replay would count
	// fewer mutations than the writer acknowledged. Pins follow all the
	// rewritten rows and precede the folded side-log deltas, which bump
	// from the pinned value — replayed versions stay exact across
	// compaction. Cold traces are excluded: their pins live in their
	// segment (or, for changed candidates, are re-logged in phase 3).
	pinApps := make([]string, 0, len(hotVers))
	for app := range hotVers {
		if verAt[app] == 0 {
			pinApps = append(pinApps, app)
		}
	}
	sort.Strings(pinApps)
	for _, app := range pinApps {
		pin := entry{op: opTraceVer, row: Row{AppID: app}, gen: hotVers[app]}
		if err := tw.writeEntry(pin); err != nil {
			return cleanupTmp(fmt.Errorf("store: compact: %v", err))
		}
	}
	if err := tw.flush(); err != nil {
		return cleanupTmp(fmt.Errorf("store: compact: %v", err))
	}

	// Phase 3: fold the side log in and commit with one atomic rename.
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.log == nil {
		tw.close()
		fsys.Remove(tmp)
		if segPath != "" {
			fsys.Remove(segPath)
		}
		return errClosed
	}
	// A cold trace written during the compaction stays hot: its sealed
	// copy is stale the moment it lands. The trace's base rows re-enter
	// the rewritten log, pinned to the seal-time version, AHEAD of the
	// side-log deltas that changed it — replay then rebuilds base + pin +
	// deltas into exactly the live state.
	var changed map[string]bool
	if seg != nil {
		changed = map[string]bool{}
		s.mu.RLock()
		for app := range coldEnt {
			if s.graph.TraceVersion(app) != verAt[app] {
				changed[app] = true
			}
		}
		s.mu.RUnlock()
		for app := range changed {
			for _, e := range coldEnt[app] {
				if err := tw.writeEntry(e); err != nil {
					return cleanupTmp(fmt.Errorf("store: compact: re-logging %s: %v", app, err))
				}
			}
			pin := entry{op: opTraceVer, row: Row{AppID: app}, gen: verAt[app]}
			if err := tw.writeEntry(pin); err != nil {
				return cleanupTmp(fmt.Errorf("store: compact: re-logging %s: %v", app, err))
			}
		}
	}
	if err := s.log.flush(); err != nil {
		return cleanupTmp(fmt.Errorf("store: compact: flushing side log: %v", err))
	}
	if err := copyFrames(fsys, s.log.path, tw); err != nil {
		return cleanupTmp(fmt.Errorf("store: compact: folding side log: %v", err))
	}
	if err := tw.flush(); err != nil {
		return cleanupTmp(fmt.Errorf("store: compact: %v", err))
	}
	if err := tw.syncFile(); err != nil {
		return cleanupTmp(fmt.Errorf("store: compact: fsync snapshot: %v", err))
	}
	if err := tw.close(); err != nil {
		return cleanupTmp(fmt.Errorf("store: compact: %v", err))
	}
	if err := fsys.Rename(tmp, logPath(dir)); err != nil {
		fsys.Remove(tmp)
		return abort(fmt.Errorf("store: compact: %v", err))
	}
	// The rename is the commit point; everything below is cleanup and
	// must leave the store coherent even on error.
	var retErr error
	if err := syncParentDir(fsys, logPath(dir)); err != nil {
		retErr = fmt.Errorf("store: compact: fsync dir: %v", err)
	}
	// The demotion committed with the rename: the new main log excludes
	// the unchanged cold traces, so the segment MUST serve them from here
	// on — register it and drop the hot copies before anything below can
	// fail. Register-then-drop means a concurrent reader always finds the
	// trace in at least one tier.
	if seg != nil {
		s.tier.register(seg)
		segPath = "" // committed; no longer removable by error paths
		s.mu.Lock()
		for app := range coldEnt {
			if changed[app] {
				continue
			}
			for _, n := range coldNodes[app] {
				s.idx.remove(n)
			}
			s.graph.DropTrace(app)
			// The registered segment now answers ID-based reads through
			// its row-ID bloom, so the router entries are pure overhead:
			// evict them, or the router grows with every trace ever
			// sealed and resident memory tracks total history again.
			ids := make([]string, 0, len(coldEnt[app]))
			for _, e := range coldEnt[app] {
				ids = append(ids, e.row.ID)
			}
			s.graph.EvictRouting(ids)
			s.rows.dropApp(app)
			delete(s.lastTouch, app)
			s.tier.demoted.Add(1)
		}
		// A mass demotion leaves every app-keyed container at its peak
		// map capacity (Go maps never shrink); rebuild them at resident
		// size so memory tracks the working set, not total history.
		s.graph.Vacuum()
		s.rows.vacuum()
		s.idx.vacuum()
		lt := make(map[string]uint64, len(s.lastTouch))
		for k, v := range s.lastTouch {
			lt[k] = v
		}
		s.lastTouch = lt
		s.mu.Unlock()
		if !s.opts.DisableSnapshots {
			s.forcePublishLocked()
		}
	}
	oldSide := s.log
	nw, err := createOrOpenLog(fsys, logPath(dir), s.opts.Sync)
	if err != nil {
		// The folded main log cannot accept appends; route them to a
		// fresh side log so nothing is lost (recovery folds it later).
		s.stats.CompactionFailures.Add(1)
		gen2 := gen + 1
		nw2, err2 := createOrOpenLog(fsys, sideLogPath(dir, gen2), s.opts.Sync)
		if err2 != nil {
			s.log = nil // fail closed: appends error rather than corrupt
			return fmt.Errorf("store: compact: reopening log: %v (side fallback: %v)", err, err2)
		}
		oldSide.close()
		fsys.Remove(oldSide.path)
		s.log = nw2
		s.compactGen = gen2
		return fmt.Errorf("store: compact: reopening log: %v", err)
	}
	oldSide.close()
	s.log = nw
	if gens, err := sideLogGens(fsys, dir); err == nil {
		for _, g := range gens {
			if g <= gen {
				fsys.Remove(sideLogPath(dir, g))
			}
		}
	}
	if s.opts.Sync {
		if err := syncParentDir(fsys, logPath(dir)); err != nil && retErr == nil {
			retErr = fmt.Errorf("store: compact: fsync dir: %v", err)
		}
	}
	s.stats.Compactions.Add(1)
	// Segment GC rides every successful compaction: with the new segment
	// (if any) registered and the hot state settled, delete sealed files
	// none of whose trace copies are live anymore. compactMu is still
	// held, so no seal races the scan.
	if s.tier != nil && !s.opts.DisableSegmentGC {
		s.gcSegmentsLocked()
	}
	return retErr
}

// compactAbort records a failed compaction. Appends keep flowing to the
// side log, which recovery (and the next successful Compact) folds back
// in, so an aborted compaction never loses data.
func (s *Store) compactAbort(err error) error {
	s.stats.CompactionFailures.Add(1)
	return err
}
