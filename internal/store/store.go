package store

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/provenance"
)

// Options configures a Store.
type Options struct {
	// Dir is the directory holding the disk log. Empty means a purely
	// in-memory store (used by tests and short-lived analyses).
	Dir string
	// Model is the provenance data model records are validated against.
	// Required unless SkipValidation is set.
	Model *provenance.Model
	// Sync demands fsync durability: an append only returns once its log
	// frame is fsynced. Appends are group-committed — concurrent writers
	// share one write+fsync per batch — so sync throughput scales with
	// writer concurrency instead of collapsing to one fsync round trip
	// per record. Off by default: the recorder clients of the paper
	// tolerate losing the in-flight events on a crash.
	Sync bool
	// FlushWindow bounds how long the group committer waits for more
	// concurrent appends to join a batch after the first arrives. Zero
	// batches opportunistically: whatever queued during the previous
	// flush+fsync forms the next batch, adding no artificial latency.
	FlushWindow time.Duration
	// MaxCommitBatch caps the entries per group-commit batch (0 = 512).
	MaxCommitBatch int
	// DisableGroupCommit forces the serial per-append path — one flush
	// (and in Sync mode one fsync) per record. Exists as the E9 ablation
	// baseline.
	DisableGroupCommit bool
	// FS is the filesystem the durability layer runs on; nil means the
	// process filesystem. Fault-injection tests substitute
	// internal/store/faultfs to exercise torn writes, fsync failures and
	// crash recovery.
	FS FS
	// SkipValidation disables model checking of incoming records.
	SkipValidation bool
	// DisableIndexes turns off secondary attribute indexes; lookups fall
	// back to scans. Exists for the index ablation (experiment E5).
	DisableIndexes bool
}

var errClosed = errors.New("store: closed")

// durabilityCounters tracks the write path's observable durability work.
type durabilityCounters struct {
	Fsyncs             atomic.Uint64
	SyncFailures       atomic.Uint64
	CommitBatches      atomic.Uint64
	GroupedCommits     atomic.Uint64
	MaxCommitBatch     atomic.Uint64
	Compactions        atomic.Uint64
	CompactionFailures atomic.Uint64
}

// DurabilityStats is a snapshot of the durability layer's counters,
// served under "durability" in the HTTP /stats endpoint.
type DurabilityStats struct {
	// GroupCommit reports whether the batched commit pipeline is active.
	GroupCommit bool
	// Fsyncs counts log-file fsyncs issued by the commit path.
	Fsyncs uint64
	// SyncFailures counts fsyncs that returned an error.
	SyncFailures uint64
	// CommitBatches counts group-commit batches made durable.
	CommitBatches uint64
	// GroupedCommits counts entries committed through batches; divided by
	// CommitBatches it yields the achieved batching factor.
	GroupedCommits uint64
	// MaxCommitBatch is the largest batch committed so far.
	MaxCommitBatch uint64
	// Compactions counts completed log compactions.
	Compactions uint64
	// CompactionFailures counts compactions aborted by an error. An
	// aborted compaction loses nothing: appends continue on the side log
	// and recovery replays main + side.
	CompactionFailures uint64
	// ReplayDroppedBytes is the torn-tail byte count truncated during the
	// last Open.
	ReplayDroppedBytes int64
	// ReplaySkipped counts log entries skipped during the last Open
	// because they failed to apply (the original writer rejected them
	// too).
	ReplaySkipped int
}

// Store is the provenance store: the append-only row log, the in-memory
// provenance graph, secondary indexes, and the change feed.
type Store struct {
	opts Options
	fs   FS

	mu       sync.RWMutex
	graph    *provenance.Graph
	rows     map[string]Row // record ID -> current row
	idx      *indexSet
	seq      uint64
	traceVer map[string]uint64 // appID -> monotonic trace version
	closed   bool

	logMu      sync.Mutex // serializes log writes and the compaction swap
	log        *logWriter
	compactGen uint64 // highest side-log generation created or folded

	compactMu sync.Mutex // one Compact at a time
	comm      *committer // group-commit pipeline (nil: in-memory or disabled)

	stats         durabilityCounters
	replayDropped int64
	replaySkipped int

	subMu   sync.Mutex
	subs    map[int]*Subscription
	nextSub int
}

// Open opens (or creates) a store. When opts.Dir is non-empty the existing
// log — the main file plus any side logs a crashed or aborted compaction
// left behind — is replayed; torn tails are truncated silently, matching
// the at-most-one-batch loss the log format guarantees.
func Open(opts Options) (*Store, error) {
	if opts.Model == nil && !opts.SkipValidation {
		return nil, fmt.Errorf("store: Options.Model is required")
	}
	s := &Store{
		opts:     opts,
		fs:       opts.FS,
		graph:    provenance.NewGraph(),
		rows:     make(map[string]Row),
		idx:      newIndexSet(),
		traceVer: make(map[string]uint64),
		subs:     make(map[int]*Subscription),
	}
	if s.fs == nil {
		s.fs = OSFS{}
	}
	if opts.Model != nil && !opts.DisableIndexes {
		for _, tf := range opts.Model.IndexedFields() {
			s.idx.declare(tf[0], tf[1])
		}
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %v", err)
		}
		// A leftover snapshot scratch file is garbage from a compaction
		// that crashed before its atomic rename.
		if err := s.fs.Remove(tmpLogPath(opts.Dir)); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("store: %v", err)
		}
		active, err := s.replayAll()
		if err != nil {
			return nil, err
		}
		w, err := createOrOpenLog(s.fs, active, opts.Sync)
		if err != nil {
			return nil, fmt.Errorf("store: %v", err)
		}
		s.log = w
		if !opts.DisableGroupCommit {
			s.comm = newCommitter(s, opts.FlushWindow, opts.MaxCommitBatch)
		}
	}
	return s, nil
}

// replayAll replays the main log and every live side log in generation
// order, removes stale side logs (already folded into the main log), and
// returns the path appends must continue on: the newest live side log if
// any survive, else the main log.
func (s *Store) replayAll() (activePath string, err error) {
	dir := s.opts.Dir
	apply := func(e entry) error { return s.applyEntry(e, false) }
	rr, err := replayLog(s.fs, logPath(dir), apply)
	if err != nil {
		return "", err
	}
	s.replayDropped = rr.dropped
	s.replaySkipped = rr.skipped
	s.compactGen = rr.folded

	gens, err := sideLogGens(s.fs, dir)
	if err != nil {
		return "", fmt.Errorf("store: listing side logs: %v", err)
	}
	activePath = logPath(dir)
	for _, gen := range gens {
		side := sideLogPath(dir, gen)
		if gen <= rr.folded {
			// Already folded into the main log by a compaction whose
			// rename committed but whose cleanup did not finish.
			if err := s.fs.Remove(side); err != nil && !os.IsNotExist(err) {
				return "", fmt.Errorf("store: removing stale side log: %v", err)
			}
			continue
		}
		srr, err := replayLog(s.fs, side, apply)
		if err != nil {
			return "", err
		}
		s.replayDropped += srr.dropped
		s.replaySkipped += srr.skipped
		s.compactGen = gen
		activePath = side
	}
	return activePath, nil
}

// Close flushes the log and stops every subscription.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	s.subMu.Lock()
	for _, sub := range s.subs {
		sub.stop()
	}
	s.subs = map[int]*Subscription{}
	s.subMu.Unlock()

	// Drain in-flight group commits before the log goes away.
	if s.comm != nil {
		s.comm.stop()
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.log != nil {
		err := s.log.close()
		s.log = nil
		return err
	}
	return nil
}

// PutNode validates, persists and indexes a new node record, then notifies
// the change feed.
func (s *Store) PutNode(n *provenance.Node) error {
	if err := s.checkNode(n); err != nil {
		return err
	}
	row, err := EncodeNode(n)
	if err != nil {
		return err
	}
	return s.commit(entry{op: opPutNode, row: row})
}

// UpdateNode replaces an existing node's attributes (enrichment). Identity
// fields (class, type, app ID) must not change.
func (s *Store) UpdateNode(n *provenance.Node) error {
	if err := s.checkNode(n); err != nil {
		return err
	}
	row, err := EncodeNode(n)
	if err != nil {
		return err
	}
	return s.commit(entry{op: opUpdateNode, row: row})
}

// PutEdge validates, persists and indexes a new relation record, then
// notifies the change feed.
func (s *Store) PutEdge(e *provenance.Edge) error {
	if !s.opts.SkipValidation {
		s.mu.RLock()
		src := s.graph.Node(e.Source)
		dst := s.graph.Node(e.Target)
		s.mu.RUnlock()
		if err := s.opts.Model.CheckEdge(e, src, dst); err != nil {
			return err
		}
	}
	row, err := EncodeEdge(e)
	if err != nil {
		return err
	}
	return s.commit(entry{op: opPutEdge, row: row})
}

func (s *Store) checkNode(n *provenance.Node) error {
	if s.opts.SkipValidation {
		return n.Validate()
	}
	return s.opts.Model.CheckNode(n)
}

// commit makes the entry durable in the log and applies it to the
// in-memory state. The log write happens first: a record is only visible
// once it is durable in the log's terms. Disk stores route through the
// group-commit pipeline (one flush+fsync shared by a batch of concurrent
// writers) unless DisableGroupCommit forces the serial path.
func (s *Store) commit(e entry) error {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return errClosed
	}
	if s.comm != nil {
		return s.comm.enqueue(e)
	}
	// Serial path: logMu is held across both the append and the in-memory
	// apply so the log's entry order always equals the order the state
	// (and the change feed) observed — recovery then reproduces exactly
	// the final state even under concurrent conflicting updates. Lock
	// order is always logMu -> mu. The group committer preserves the same
	// invariant batch-wise.
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.log != nil {
		if err := s.log.append(e); err != nil {
			return fmt.Errorf("store: log append: %v", err)
		}
		if s.log.sync {
			s.stats.Fsyncs.Add(1)
		}
	}
	return s.applyEntry(e, true)
}

// applyEntry mutates the in-memory state. notify controls whether the
// change feed fires (replay does not notify).
func (s *Store) applyEntry(e entry, notify bool) error {
	n, ed, err := DecodeRow(e.row)
	if err != nil {
		return err
	}
	s.mu.Lock()
	switch e.op {
	case opPutNode:
		if n == nil {
			s.mu.Unlock()
			return fmt.Errorf("store: put-node entry decoded to non-node %s", e.row.ID)
		}
		if err := s.graph.AddNode(n); err != nil {
			s.mu.Unlock()
			return err
		}
		s.idx.add(n)
	case opUpdateNode:
		if n == nil {
			s.mu.Unlock()
			return fmt.Errorf("store: update entry decoded to non-node %s", e.row.ID)
		}
		old := s.graph.Node(n.ID)
		if err := s.graph.UpdateNode(n); err != nil {
			s.mu.Unlock()
			return err
		}
		s.idx.remove(old)
		s.idx.add(n)
	case opPutEdge:
		if ed == nil {
			s.mu.Unlock()
			return fmt.Errorf("store: put-edge entry decoded to non-edge %s", e.row.ID)
		}
		if err := s.graph.AddEdge(ed); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.rows[e.row.ID] = e.row
	s.seq++
	seq := s.seq
	// Every mutating commit bumps the touched trace's monotonic version:
	// the continuous-checking cache keys results by it, so "unchanged
	// trace" is decidable without comparing graphs. Replay bumps too, so a
	// recovered store reports the same versions the writer saw.
	var ver uint64
	if app := e.row.AppID; app != "" {
		s.traceVer[app]++
		ver = s.traceVer[app]
	}
	if notify {
		// Publish before releasing the state lock so subscribers observe
		// events in exactly commit order. Enqueueing is non-blocking (the
		// subscription queue is unbounded) and the subscription locks are
		// leaves, so no cycle is possible.
		ev := Event{Seq: seq, TraceVersion: ver}
		switch e.op {
		case opPutNode:
			ev.Kind = EventNode
			ev.Node = n
		case opUpdateNode:
			ev.Kind = EventNodeUpdate
			ev.Node = n
		case opPutEdge:
			ev.Kind = EventEdge
			ev.Edge = ed
		}
		s.publish(ev)
	}
	s.mu.Unlock()
	return nil
}

// View runs fn with read access to the provenance graph. The graph must
// not be mutated or retained past fn's return; use clones for that.
func (s *Store) View(fn func(g *provenance.Graph) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return fn(s.graph)
}

// TraceVersion returns the monotonic version of one trace: the number of
// mutating commits (node puts, updates, edge puts) that touched it. Zero
// means the trace has never been written. Versions strictly increase with
// every commit to the trace, so equal versions imply an unchanged trace.
func (s *Store) TraceVersion(appID string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.traceVer[appID]
}

// ViewTrace runs fn with read access to the graph together with the
// current version of one trace, observed atomically under the same lock.
// Use it when a computation over the trace must be tagged with the exact
// version it saw (the continuous-checking result cache).
func (s *Store) ViewTrace(appID string, fn func(g *provenance.Graph, version uint64) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return fn(s.graph, s.traceVer[appID])
}

// Node returns a copy of the node record, or nil when absent.
func (s *Store) Node(id string) *provenance.Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graph.Node(id).Clone()
}

// Edge returns a copy of the edge record, or nil when absent.
func (s *Store) Edge(id string) *provenance.Edge {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graph.Edge(id).Clone()
}

// Row returns the stored Table-1 row for a record ID.
func (s *Store) Row(id string) (Row, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.rows[id]
	return r, ok
}

// RowsForApp returns every row of one trace, sorted by record ID. This is
// the query the paper's Table 1 illustrates: all provenance entities of an
// execution trace.
func (s *Store) RowsForApp(appID string) []Row {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var res []Row
	for _, r := range s.rows {
		if r.AppID == appID {
			res = append(res, r)
		}
	}
	sort.Slice(res, func(i, j int) bool { return res[i].ID < res[j].ID })
	return res
}

// LookupByAttr returns the IDs of nodes of the given type whose field
// equals the value. It uses the secondary index when one is declared,
// otherwise it scans. The second result reports whether an index was used
// (surfaced by EXPLAIN in the query engine).
func (s *Store) LookupByAttr(typ, field string, v provenance.Value) ([]string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if ids, ok := s.idx.lookup(typ, field, v); ok {
		return ids, true
	}
	var res []string
	for _, n := range s.graph.Nodes(provenance.NodeFilter{Type: typ}) {
		if n.Attr(field).Equal(v) {
			res = append(res, n.ID)
		}
	}
	return res, false
}

// Stats summarizes the store contents.
type Stats struct {
	Nodes   int
	Edges   int
	Rows    int
	Seq     uint64
	Indexes int
}

// Stats returns current store statistics.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Nodes:   s.graph.NumNodes(),
		Edges:   s.graph.NumEdges(),
		Rows:    len(s.rows),
		Seq:     s.seq,
		Indexes: s.idx.size(),
	}
}

// Durability returns a snapshot of the durability layer's counters.
func (s *Store) Durability() DurabilityStats {
	return DurabilityStats{
		GroupCommit:        s.comm != nil,
		Fsyncs:             s.stats.Fsyncs.Load(),
		SyncFailures:       s.stats.SyncFailures.Load(),
		CommitBatches:      s.stats.CommitBatches.Load(),
		GroupedCommits:     s.stats.GroupedCommits.Load(),
		MaxCommitBatch:     s.stats.MaxCommitBatch.Load(),
		Compactions:        s.stats.Compactions.Load(),
		CompactionFailures: s.stats.CompactionFailures.Load(),
		ReplayDroppedBytes: s.replayDropped,
		ReplaySkipped:      s.replaySkipped,
	}
}

// AppIDs lists the distinct traces in the store.
func (s *Store) AppIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graph.AppIDs()
}

// Model returns the data model the store validates against (may be nil
// when SkipValidation is set).
func (s *Store) Model() *provenance.Model { return s.opts.Model }

// Compact rewrites the disk log to contain exactly the current state:
// every node row first, then every edge row, update chains collapsed to
// the latest version. No-op for in-memory stores.
//
// The rewrite is crash-safe and runs concurrently with writers:
//
//  1. A brief pause under logMu snapshots the row table and redirects
//     appends to a fresh side log (generation G).
//  2. With no locks held, the snapshot is written to a scratch file
//     headed by a marker frame recording "side generations ≤ G folded",
//     then fsynced.
//  3. A second brief pause folds the side log's frames into the scratch
//     file, fsyncs it, and atomically renames it over the main log — the
//     single commit point — then fsyncs the directory and cleans up.
//
// A crash before the rename leaves the old main log plus the side log
// (recovery replays both, in order); a crash after it leaves the new main
// log whose marker proves the side log is stale (recovery deletes it). An
// error aborts the compaction without data loss: the scratch file is
// removed and appends simply continue on the side log.
func (s *Store) Compact() error {
	if s.opts.Dir == "" {
		return nil
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	dir := s.opts.Dir
	fsys := s.fs

	// Phase 1: freeze the current log at a quiescent point (logMu held, so
	// no commit is mid-flight and the in-memory state equals the log) and
	// redirect appends to a fresh side log.
	s.logMu.Lock()
	if s.log == nil {
		s.logMu.Unlock()
		return errClosed
	}
	if err := s.log.flush(); err != nil {
		s.logMu.Unlock()
		return fmt.Errorf("store: compact: %v", err)
	}
	if s.opts.Sync {
		if err := s.log.syncFile(); err != nil {
			s.logMu.Unlock()
			return fmt.Errorf("store: compact: %v", err)
		}
	}
	gen := s.compactGen + 1
	side, err := createOrOpenLog(fsys, sideLogPath(dir, gen), s.opts.Sync)
	if err != nil {
		s.logMu.Unlock()
		return fmt.Errorf("store: compact: opening side log: %v", err)
	}
	if s.opts.Sync {
		if err := syncParentDir(fsys, logPath(dir)); err != nil {
			side.close()
			fsys.Remove(sideLogPath(dir, gen))
			s.logMu.Unlock()
			return fmt.Errorf("store: compact: %v", err)
		}
	}
	frozen := s.log
	s.log = side
	s.compactGen = gen

	s.mu.RLock()
	entries := make([]entry, 0, len(s.rows))
	for _, r := range s.rows {
		if r.Class == provenance.ClassRelation.String() {
			continue
		}
		entries = append(entries, entry{op: opPutNode, row: r})
	}
	nNodes := len(entries)
	for _, r := range s.rows {
		if r.Class == provenance.ClassRelation.String() {
			entries = append(entries, entry{op: opPutEdge, row: r})
		}
	}
	s.mu.RUnlock()
	s.logMu.Unlock()

	// The frozen log never receives another byte; release its handle now.
	// Its file stays on disk until the rename (main) or cleanup (side).
	if err := frozen.close(); err != nil {
		return s.compactAbort(fmt.Errorf("store: compact: closing frozen log: %v", err))
	}

	// Phase 2: write the snapshot to the scratch file — no store locks
	// held, writers are appending to the side log in parallel.
	sort.Slice(entries[:nNodes], func(i, j int) bool { return entries[i].row.ID < entries[j].row.ID })
	sort.Slice(entries[nNodes:], func(i, j int) bool {
		return entries[nNodes+i].row.ID < entries[nNodes+j].row.ID
	})
	tmp := tmpLogPath(dir)
	if err := fsys.Remove(tmp); err != nil && !os.IsNotExist(err) {
		return s.compactAbort(fmt.Errorf("store: compact: %v", err))
	}
	tw, err := createOrOpenLog(fsys, tmp, false)
	if err != nil {
		fsys.Remove(tmp) // created-but-unwritable scratch must not linger
		return s.compactAbort(fmt.Errorf("store: compact: %v", err))
	}
	cleanupTmp := func(err error) error {
		tw.close()
		fsys.Remove(tmp)
		return s.compactAbort(err)
	}
	if err := tw.writeEntry(entry{op: opCompactMark, gen: gen}); err != nil {
		return cleanupTmp(fmt.Errorf("store: compact: %v", err))
	}
	for _, e := range entries {
		if err := tw.writeEntry(e); err != nil {
			return cleanupTmp(fmt.Errorf("store: compact: %v", err))
		}
	}
	if err := tw.flush(); err != nil {
		return cleanupTmp(fmt.Errorf("store: compact: %v", err))
	}

	// Phase 3: fold the side log in and commit with one atomic rename.
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.log == nil {
		tw.close()
		fsys.Remove(tmp)
		return errClosed
	}
	if err := s.log.flush(); err != nil {
		return cleanupTmp(fmt.Errorf("store: compact: flushing side log: %v", err))
	}
	if err := copyFrames(fsys, s.log.path, tw); err != nil {
		return cleanupTmp(fmt.Errorf("store: compact: folding side log: %v", err))
	}
	if err := tw.flush(); err != nil {
		return cleanupTmp(fmt.Errorf("store: compact: %v", err))
	}
	if err := tw.syncFile(); err != nil {
		return cleanupTmp(fmt.Errorf("store: compact: fsync snapshot: %v", err))
	}
	if err := tw.close(); err != nil {
		return cleanupTmp(fmt.Errorf("store: compact: %v", err))
	}
	if err := fsys.Rename(tmp, logPath(dir)); err != nil {
		fsys.Remove(tmp)
		return s.compactAbort(fmt.Errorf("store: compact: %v", err))
	}
	// The rename is the commit point; everything below is cleanup and
	// must leave the store coherent even on error.
	var retErr error
	if err := syncParentDir(fsys, logPath(dir)); err != nil {
		retErr = fmt.Errorf("store: compact: fsync dir: %v", err)
	}
	oldSide := s.log
	nw, err := createOrOpenLog(fsys, logPath(dir), s.opts.Sync)
	if err != nil {
		// The folded main log cannot accept appends; route them to a
		// fresh side log so nothing is lost (recovery folds it later).
		s.stats.CompactionFailures.Add(1)
		gen2 := gen + 1
		nw2, err2 := createOrOpenLog(fsys, sideLogPath(dir, gen2), s.opts.Sync)
		if err2 != nil {
			s.log = nil // fail closed: appends error rather than corrupt
			return fmt.Errorf("store: compact: reopening log: %v (side fallback: %v)", err, err2)
		}
		oldSide.close()
		fsys.Remove(oldSide.path)
		s.log = nw2
		s.compactGen = gen2
		return fmt.Errorf("store: compact: reopening log: %v", err)
	}
	oldSide.close()
	s.log = nw
	if gens, err := sideLogGens(fsys, dir); err == nil {
		for _, g := range gens {
			if g <= gen {
				fsys.Remove(sideLogPath(dir, g))
			}
		}
	}
	if s.opts.Sync {
		if err := syncParentDir(fsys, logPath(dir)); err != nil && retErr == nil {
			retErr = fmt.Errorf("store: compact: fsync dir: %v", err)
		}
	}
	s.stats.Compactions.Add(1)
	return retErr
}

// compactAbort records a failed compaction. Appends keep flowing to the
// side log, which recovery (and the next successful Compact) folds back
// in, so an aborted compaction never loses data.
func (s *Store) compactAbort(err error) error {
	s.stats.CompactionFailures.Add(1)
	return err
}
