package store

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/provenance"
)

// Options configures a Store.
type Options struct {
	// Dir is the directory holding the disk log. Empty means a purely
	// in-memory store (used by tests and short-lived analyses).
	Dir string
	// Model is the provenance data model records are validated against.
	// Required unless SkipValidation is set.
	Model *provenance.Model
	// Sync forces an fsync after every append. Off by default: the
	// recorder clients of the paper tolerate losing the in-flight event on
	// a crash, and group-commit durability is not the paper's topic.
	Sync bool
	// SkipValidation disables model checking of incoming records.
	SkipValidation bool
	// DisableIndexes turns off secondary attribute indexes; lookups fall
	// back to scans. Exists for the index ablation (experiment E5).
	DisableIndexes bool
}

// Store is the provenance store: the append-only row log, the in-memory
// provenance graph, secondary indexes, and the change feed.
type Store struct {
	opts Options

	mu       sync.RWMutex
	graph    *provenance.Graph
	rows     map[string]Row // record ID -> current row
	idx      *indexSet
	seq      uint64
	traceVer map[string]uint64 // appID -> monotonic trace version
	closed   bool

	logMu sync.Mutex // serializes log appends and compaction
	log   *logWriter

	subMu   sync.Mutex
	subs    map[int]*Subscription
	nextSub int
}

// Open opens (or creates) a store. When opts.Dir is non-empty the existing
// log is replayed; a torn tail is truncated silently, matching the
// at-most-one-record loss the log format guarantees.
func Open(opts Options) (*Store, error) {
	if opts.Model == nil && !opts.SkipValidation {
		return nil, fmt.Errorf("store: Options.Model is required")
	}
	s := &Store{
		opts:     opts,
		graph:    provenance.NewGraph(),
		rows:     make(map[string]Row),
		idx:      newIndexSet(),
		traceVer: make(map[string]uint64),
		subs:     make(map[int]*Subscription),
	}
	if opts.Model != nil && !opts.DisableIndexes {
		for _, tf := range opts.Model.IndexedFields() {
			s.idx.declare(tf[0], tf[1])
		}
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %v", err)
		}
		if _, err := replayLog(logPath(opts.Dir), func(e entry) error {
			return s.applyEntry(e, false)
		}); err != nil {
			return nil, err
		}
		w, err := createOrOpenLog(logPath(opts.Dir), opts.Sync)
		if err != nil {
			return nil, fmt.Errorf("store: %v", err)
		}
		s.log = w
	}
	return s, nil
}

// Close flushes the log and stops every subscription.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	s.subMu.Lock()
	for _, sub := range s.subs {
		sub.stop()
	}
	s.subs = map[int]*Subscription{}
	s.subMu.Unlock()

	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.log != nil {
		return s.log.close()
	}
	return nil
}

// PutNode validates, persists and indexes a new node record, then notifies
// the change feed.
func (s *Store) PutNode(n *provenance.Node) error {
	if err := s.checkNode(n); err != nil {
		return err
	}
	row, err := EncodeNode(n)
	if err != nil {
		return err
	}
	return s.commit(entry{op: opPutNode, row: row})
}

// UpdateNode replaces an existing node's attributes (enrichment). Identity
// fields (class, type, app ID) must not change.
func (s *Store) UpdateNode(n *provenance.Node) error {
	if err := s.checkNode(n); err != nil {
		return err
	}
	row, err := EncodeNode(n)
	if err != nil {
		return err
	}
	return s.commit(entry{op: opUpdateNode, row: row})
}

// PutEdge validates, persists and indexes a new relation record, then
// notifies the change feed.
func (s *Store) PutEdge(e *provenance.Edge) error {
	if !s.opts.SkipValidation {
		s.mu.RLock()
		src := s.graph.Node(e.Source)
		dst := s.graph.Node(e.Target)
		s.mu.RUnlock()
		if err := s.opts.Model.CheckEdge(e, src, dst); err != nil {
			return err
		}
	}
	row, err := EncodeEdge(e)
	if err != nil {
		return err
	}
	return s.commit(entry{op: opPutEdge, row: row})
}

func (s *Store) checkNode(n *provenance.Node) error {
	if s.opts.SkipValidation {
		return n.Validate()
	}
	return s.opts.Model.CheckNode(n)
}

// commit appends the entry to the log and applies it to the in-memory
// state. The log append happens first: a record is only visible once it is
// durable in the log's terms.
func (s *Store) commit(e entry) error {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return fmt.Errorf("store: closed")
	}
	// logMu is held across both the append and the in-memory apply so the
	// log's entry order always equals the order the state (and the change
	// feed) observed — recovery then reproduces exactly the final state
	// even under concurrent conflicting updates. Lock order is always
	// logMu -> mu.
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.log != nil {
		if err := s.log.append(e); err != nil {
			return fmt.Errorf("store: log append: %v", err)
		}
	}
	return s.applyEntry(e, true)
}

// applyEntry mutates the in-memory state. notify controls whether the
// change feed fires (replay does not notify).
func (s *Store) applyEntry(e entry, notify bool) error {
	n, ed, err := DecodeRow(e.row)
	if err != nil {
		return err
	}
	s.mu.Lock()
	switch e.op {
	case opPutNode:
		if n == nil {
			s.mu.Unlock()
			return fmt.Errorf("store: put-node entry decoded to non-node %s", e.row.ID)
		}
		if err := s.graph.AddNode(n); err != nil {
			s.mu.Unlock()
			return err
		}
		s.idx.add(n)
	case opUpdateNode:
		if n == nil {
			s.mu.Unlock()
			return fmt.Errorf("store: update entry decoded to non-node %s", e.row.ID)
		}
		old := s.graph.Node(n.ID)
		if err := s.graph.UpdateNode(n); err != nil {
			s.mu.Unlock()
			return err
		}
		s.idx.remove(old)
		s.idx.add(n)
	case opPutEdge:
		if ed == nil {
			s.mu.Unlock()
			return fmt.Errorf("store: put-edge entry decoded to non-edge %s", e.row.ID)
		}
		if err := s.graph.AddEdge(ed); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.rows[e.row.ID] = e.row
	s.seq++
	seq := s.seq
	// Every mutating commit bumps the touched trace's monotonic version:
	// the continuous-checking cache keys results by it, so "unchanged
	// trace" is decidable without comparing graphs. Replay bumps too, so a
	// recovered store reports the same versions the writer saw.
	var ver uint64
	if app := e.row.AppID; app != "" {
		s.traceVer[app]++
		ver = s.traceVer[app]
	}
	if notify {
		// Publish before releasing the state lock so subscribers observe
		// events in exactly commit order. Enqueueing is non-blocking (the
		// subscription queue is unbounded) and the subscription locks are
		// leaves, so no cycle is possible.
		ev := Event{Seq: seq, TraceVersion: ver}
		switch e.op {
		case opPutNode:
			ev.Kind = EventNode
			ev.Node = n
		case opUpdateNode:
			ev.Kind = EventNodeUpdate
			ev.Node = n
		case opPutEdge:
			ev.Kind = EventEdge
			ev.Edge = ed
		}
		s.publish(ev)
	}
	s.mu.Unlock()
	return nil
}

// View runs fn with read access to the provenance graph. The graph must
// not be mutated or retained past fn's return; use clones for that.
func (s *Store) View(fn func(g *provenance.Graph) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return fn(s.graph)
}

// TraceVersion returns the monotonic version of one trace: the number of
// mutating commits (node puts, updates, edge puts) that touched it. Zero
// means the trace has never been written. Versions strictly increase with
// every commit to the trace, so equal versions imply an unchanged trace.
func (s *Store) TraceVersion(appID string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.traceVer[appID]
}

// ViewTrace runs fn with read access to the graph together with the
// current version of one trace, observed atomically under the same lock.
// Use it when a computation over the trace must be tagged with the exact
// version it saw (the continuous-checking result cache).
func (s *Store) ViewTrace(appID string, fn func(g *provenance.Graph, version uint64) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return fn(s.graph, s.traceVer[appID])
}

// Node returns a copy of the node record, or nil when absent.
func (s *Store) Node(id string) *provenance.Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graph.Node(id).Clone()
}

// Edge returns a copy of the edge record, or nil when absent.
func (s *Store) Edge(id string) *provenance.Edge {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graph.Edge(id).Clone()
}

// Row returns the stored Table-1 row for a record ID.
func (s *Store) Row(id string) (Row, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.rows[id]
	return r, ok
}

// RowsForApp returns every row of one trace, sorted by record ID. This is
// the query the paper's Table 1 illustrates: all provenance entities of an
// execution trace.
func (s *Store) RowsForApp(appID string) []Row {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var res []Row
	for _, r := range s.rows {
		if r.AppID == appID {
			res = append(res, r)
		}
	}
	sort.Slice(res, func(i, j int) bool { return res[i].ID < res[j].ID })
	return res
}

// LookupByAttr returns the IDs of nodes of the given type whose field
// equals the value. It uses the secondary index when one is declared,
// otherwise it scans. The second result reports whether an index was used
// (surfaced by EXPLAIN in the query engine).
func (s *Store) LookupByAttr(typ, field string, v provenance.Value) ([]string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if ids, ok := s.idx.lookup(typ, field, v); ok {
		return ids, true
	}
	var res []string
	for _, n := range s.graph.Nodes(provenance.NodeFilter{Type: typ}) {
		if n.Attr(field).Equal(v) {
			res = append(res, n.ID)
		}
	}
	return res, false
}

// Stats summarizes the store contents.
type Stats struct {
	Nodes   int
	Edges   int
	Rows    int
	Seq     uint64
	Indexes int
}

// Stats returns current store statistics.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Nodes:   s.graph.NumNodes(),
		Edges:   s.graph.NumEdges(),
		Rows:    len(s.rows),
		Seq:     s.seq,
		Indexes: s.idx.size(),
	}
}

// AppIDs lists the distinct traces in the store.
func (s *Store) AppIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graph.AppIDs()
}

// Model returns the data model the store validates against (may be nil
// when SkipValidation is set).
func (s *Store) Model() *provenance.Model { return s.opts.Model }

// Compact rewrites the disk log to contain exactly the current state:
// every node row first, then every edge row. Update chains collapse to the
// latest version. No-op for in-memory stores.
func (s *Store) Compact() error {
	if s.log == nil {
		return nil
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()

	s.mu.RLock()
	entries := make([]entry, 0, len(s.rows))
	for _, r := range s.rows {
		if r.Class == provenance.ClassRelation.String() {
			continue
		}
		entries = append(entries, entry{op: opPutNode, row: r})
	}
	nNodes := len(entries)
	for _, r := range s.rows {
		if r.Class == provenance.ClassRelation.String() {
			entries = append(entries, entry{op: opPutEdge, row: r})
		}
	}
	s.mu.RUnlock()
	sort.Slice(entries[:nNodes], func(i, j int) bool { return entries[i].row.ID < entries[j].row.ID })
	sort.Slice(entries[nNodes:], func(i, j int) bool {
		return entries[nNodes+i].row.ID < entries[nNodes+j].row.ID
	})

	tmp := logPath(s.opts.Dir) + ".compact"
	if err := os.Remove(tmp); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: compact: %v", err)
	}
	w, err := createOrOpenLog(tmp, false)
	if err != nil {
		return fmt.Errorf("store: compact: %v", err)
	}
	for _, e := range entries {
		if err := w.append(e); err != nil {
			w.close()
			return fmt.Errorf("store: compact: %v", err)
		}
	}
	if err := w.close(); err != nil {
		return fmt.Errorf("store: compact: %v", err)
	}
	if err := s.log.close(); err != nil {
		return fmt.Errorf("store: compact: closing old log: %v", err)
	}
	if err := os.Rename(tmp, logPath(s.opts.Dir)); err != nil {
		return fmt.Errorf("store: compact: %v", err)
	}
	nw, err := createOrOpenLog(logPath(s.opts.Dir), s.opts.Sync)
	if err != nil {
		return fmt.Errorf("store: compact: reopening log: %v", err)
	}
	s.log = nw
	return nil
}
