package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A sealed segment is an immutable on-disk file holding the full row sets
// of traces demoted out of the hot tier. Layout:
//
//	8-byte magic "PROVSEG1"
//	data blocks    — each one CRC frame (uint32 len, uint32 CRC-32,
//	                 payload); the payload is a sequence of
//	                 (uint32 len, encodeEntry bytes) records. Traces are
//	                 sorted by ID, a trace never spans blocks, and a
//	                 trace's nodes precede its edges so rehydration can
//	                 replay them in order.
//	footer         — one CRC frame whose payload is segFooter JSON: the
//	                 zone map (min/max trace ID, seq range), the block
//	                 table, the per-trace index (block, version,
//	                 last-touch seq), and the four bloom filters (trace
//	                 ID, class, type, row ID).
//	16-byte trailer — uint64 footer offset + 8-byte magic "PROVSEGF".
//
// The trailer is written last, so a crash mid-seal leaves a file that
// fails trailer or footer validation and is deleted at Open — the log
// still holds every row of a half-sealed segment (demotion only drops
// traces from the replayable state after the rename that commits the
// compaction). After open, only the zone map, blooms, and counts stay
// resident; the block table and trace index are re-read through the block
// cache on demand, so segment metadata does not scale RAM with trace
// count.

const (
	segMagic    = "PROVSEG1"
	segEndMagic = "PROVSEGF"
	segFormat   = 1
	// segBlockTarget is the default data-block size demotion aims for:
	// big enough to amortize frame+seek overhead, small enough that one
	// cold read pages in one trace's neighborhood, not the whole file.
	segBlockTarget = 64 << 10
)

// segBlock locates one data block inside the file.
type segBlock struct {
	Off int64 `json:"off"`
	Len int64 `json:"len"` // frame length including the 8-byte header
}

// segTrace is one demoted trace's index entry.
type segTrace struct {
	App string `json:"app"`
	// Blk indexes into the footer's block table.
	Blk int `json:"blk"`
	// Ver is the trace's version counter at seal time; rehydration pins
	// it so hot/cold reads agree on versions.
	Ver uint64 `json:"ver"`
	// Last is the store sequence of the trace's last mutation, used by
	// the demotion policy's audit trail and by as-of reads.
	Last uint64 `json:"last"`
	Rows int    `json:"rows"`
}

// segFooter is the segment's self-describing index, stored as JSON inside
// a CRC frame.
type segFooter struct {
	Format  int    `json:"format"`
	SealSeq uint64 `json:"seal_seq"`
	// MinSeq/MaxSeq bound the last-touch sequences of the traces inside:
	// the zone map's sequence range.
	MinSeq uint64 `json:"min_seq"`
	MaxSeq uint64 `json:"max_seq"`
	// MinApp/MaxApp bound the trace IDs inside: the zone map's ID range.
	MinApp string `json:"min_app"`
	MaxApp string `json:"max_app"`

	Blocks []segBlock `json:"blocks"`
	// Traces is sorted by App for binary search.
	Traces []segTrace `json:"traces"`

	BloomTrace []byte `json:"bloom_trace"`
	BloomClass []byte `json:"bloom_class"`
	BloomType  []byte `json:"bloom_type"`
	// BloomID covers every row (record) ID sealed in the segment. It lets
	// the store resolve a raw record ID to its owning trace without any
	// resident routing state — the hot tier's record-ID router evicts
	// demoted IDs, and after a restart it never knew them at all.
	BloomID []byte `json:"bloom_id,omitempty"`
}

// segment is the resident handle on one sealed file: identity, zone map,
// blooms, and counts. Immutable after openSegment, so readers share it
// without locks.
type segment struct {
	id   uint64
	path string
	fs   FS

	sealSeq uint64
	minSeq  uint64
	maxSeq  uint64
	minApp  string
	maxApp  string

	bloomTrace *bloom
	bloomClass *bloom
	bloomType  *bloom
	// bloomID is nil for segments sealed before the row-ID bloom existed;
	// ID lookups then probe the segment unconditionally.
	bloomID *bloom

	nTraces int
	nRows   int
	nBlocks int
	size    int64
	// footerOff lets readFooter seek straight to the index frame.
	footerOff int64
}

// segmentsDir is where sealed segments live, beside the log.
func segmentsDir(dir string) string { return filepath.Join(dir, "segments") }

// segmentPath names segment id inside dir.
func segmentPath(dir string, id uint64) string {
	return filepath.Join(segmentsDir(dir), fmt.Sprintf("seg-%08d.seg", id))
}

// segmentIDs lists the segment IDs present under dir, ascending.
func segmentIDs(fsys FS, dir string) ([]uint64, error) {
	names, err := fsys.ReadDir(segmentsDir(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var ids []uint64
	for _, name := range names {
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".seg"), 10, 64)
		if err != nil {
			continue // not ours
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// segTraceRows is one trace's contribution to a segment under seal.
type segTraceRows struct {
	app     string
	ver     uint64
	last    uint64
	rows    []entry // nodes first, then edges
	classes []string
	types   []string
}

// writeSegment seals the given traces (any order; sorted here) into a new
// segment file at path. The file is flushed and fsynced before return;
// the caller fsyncs the directory and registers the segment only after
// the compaction rename commits the demotion.
func writeSegment(fsys FS, path string, sealSeq uint64, traces []segTraceRows, blockTarget int) (*segFooter, error) {
	if blockTarget <= 0 {
		blockTarget = segBlockTarget
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i].app < traces[j].app })

	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	abort := func(err error) error {
		f.Close()
		fsys.Remove(path)
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		return nil, abort(err)
	}

	ft := &segFooter{Format: segFormat, SealSeq: sealSeq}
	off := int64(len(segMagic))
	var block bytes.Buffer
	flushBlock := func() error {
		if block.Len() == 0 {
			return nil
		}
		n, err := writeSegFrame(f, block.Bytes())
		if err != nil {
			return err
		}
		ft.Blocks = append(ft.Blocks, segBlock{Off: off, Len: n})
		off += n
		block.Reset()
		return nil
	}

	bt := newBloom(len(traces))
	nRows := 0
	for _, tr := range traces {
		nRows += len(tr.rows)
	}
	bid := newBloom(nRows)
	classKeys, typeKeys := map[string]bool{}, map[string]bool{}
	for _, tr := range traces {
		// One trace never spans blocks: seal the current block first if
		// this trace would push it past the target.
		if block.Len() > 0 && block.Len() >= blockTarget {
			if err := flushBlock(); err != nil {
				return nil, abort(err)
			}
		}
		blk := len(ft.Blocks) // block this trace will land in
		for _, e := range tr.rows {
			raw := encodeEntry(e)
			var lenb [4]byte
			binary.LittleEndian.PutUint32(lenb[:], uint32(len(raw)))
			block.Write(lenb[:])
			block.Write(raw)
			bid.add(e.row.ID)
		}
		ft.Traces = append(ft.Traces, segTrace{
			App: tr.app, Blk: blk, Ver: tr.ver, Last: tr.last, Rows: len(tr.rows),
		})
		bt.add(tr.app)
		for _, c := range tr.classes {
			classKeys[c] = true
		}
		for _, t := range tr.types {
			typeKeys[t] = true
		}
		if ft.MinApp == "" {
			ft.MinApp, ft.MinSeq = tr.app, tr.last
		}
		ft.MaxApp = tr.app
		if tr.last < ft.MinSeq {
			ft.MinSeq = tr.last
		}
		if tr.last > ft.MaxSeq {
			ft.MaxSeq = tr.last
		}
	}
	if err := flushBlock(); err != nil {
		return nil, abort(err)
	}

	bc, bty := newBloom(len(classKeys)), newBloom(len(typeKeys))
	for c := range classKeys {
		bc.add(c)
	}
	for t := range typeKeys {
		bty.add(t)
	}
	ft.BloomTrace, ft.BloomClass, ft.BloomType = bt.marshal(), bc.marshal(), bty.marshal()
	ft.BloomID = bid.marshal()

	raw, err := json.Marshal(ft)
	if err != nil {
		return nil, abort(err)
	}
	footerOff := off
	if _, err := writeSegFrame(f, raw); err != nil {
		return nil, abort(err)
	}
	var trailer [16]byte
	binary.LittleEndian.PutUint64(trailer[:8], uint64(footerOff))
	copy(trailer[8:], segEndMagic)
	if _, err := f.Write(trailer[:]); err != nil {
		return nil, abort(err)
	}
	if err := f.Sync(); err != nil {
		return nil, abort(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(path)
		return nil, err
	}
	return ft, nil
}

// writeSegFrame writes one CRC frame and returns its on-disk length.
func writeSegFrame(w io.Writer, payload []byte) (int64, error) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return int64(8 + len(payload)), nil
}

// openSegment validates the file at path and returns its resident handle.
// Any structural damage — short file, bad magic, torn trailer, footer CRC
// mismatch — is an error; the tier treats such files as half-sealed
// garbage and removes them (the log still holds their rows).
func openSegment(fsys FS, path string, id uint64) (*segment, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < int64(len(segMagic))+16 {
		return nil, fmt.Errorf("store: segment %s truncated (%d bytes)", path, size)
	}
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		return nil, err
	}
	if string(magic) != segMagic {
		return nil, fmt.Errorf("store: %s is not a segment (bad magic)", path)
	}
	var trailer [16]byte
	if _, err := f.Seek(size-16, io.SeekStart); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(f, trailer[:]); err != nil {
		return nil, err
	}
	if string(trailer[8:]) != segEndMagic {
		return nil, fmt.Errorf("store: segment %s has a torn trailer", path)
	}
	footerOff := int64(binary.LittleEndian.Uint64(trailer[:8]))
	if footerOff < int64(len(segMagic)) || footerOff >= size-16 {
		return nil, fmt.Errorf("store: segment %s footer offset %d out of range", path, footerOff)
	}
	ft, err := readSegFooter(f, footerOff)
	if err != nil {
		return nil, fmt.Errorf("store: segment %s: %w", path, err)
	}

	s := &segment{
		id: id, path: path, fs: fsys,
		sealSeq: ft.SealSeq, minSeq: ft.MinSeq, maxSeq: ft.MaxSeq,
		minApp: ft.MinApp, maxApp: ft.MaxApp,
		nTraces: len(ft.Traces), nBlocks: len(ft.Blocks),
		size: size, footerOff: footerOff,
	}
	for _, tr := range ft.Traces {
		s.nRows += tr.Rows
	}
	if s.bloomTrace, err = unmarshalBloom(ft.BloomTrace); err != nil {
		return nil, fmt.Errorf("store: segment %s trace bloom: %w", path, err)
	}
	if s.bloomClass, err = unmarshalBloom(ft.BloomClass); err != nil {
		return nil, fmt.Errorf("store: segment %s class bloom: %w", path, err)
	}
	if s.bloomType, err = unmarshalBloom(ft.BloomType); err != nil {
		return nil, fmt.Errorf("store: segment %s type bloom: %w", path, err)
	}
	if len(ft.BloomID) > 0 {
		if s.bloomID, err = unmarshalBloom(ft.BloomID); err != nil {
			return nil, fmt.Errorf("store: segment %s row-ID bloom: %w", path, err)
		}
	}
	return s, nil
}

// readSegFooter reads and validates the footer frame at off.
func readSegFooter(f File, off int64) (*segFooter, error) {
	payload, err := readSegFrameAt(f, off, -1)
	if err != nil {
		return nil, err
	}
	var ft segFooter
	if err := json.Unmarshal(payload, &ft); err != nil {
		return nil, fmt.Errorf("footer JSON: %v", err)
	}
	if ft.Format != segFormat {
		return nil, fmt.Errorf("unsupported segment format %d", ft.Format)
	}
	for i := 1; i < len(ft.Traces); i++ {
		if ft.Traces[i].App <= ft.Traces[i-1].App {
			return nil, fmt.Errorf("trace index not strictly sorted")
		}
	}
	for _, tr := range ft.Traces {
		if tr.Blk < 0 || tr.Blk >= len(ft.Blocks) {
			return nil, fmt.Errorf("trace %s references block %d of %d", tr.App, tr.Blk, len(ft.Blocks))
		}
	}
	return &ft, nil
}

// readSegFrameAt reads one CRC frame at off. wantLen, when >= 0, is the
// expected on-disk frame length from the block table — a mismatch means
// the footer and the data disagree and the frame is rejected.
func readSegFrameAt(f File, off, wantLen int64) ([]byte, error) {
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return nil, err
	}
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("frame header at %d: %v", off, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	const maxFrame = 64 << 20
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("frame at %d has length %d", off, n)
	}
	if wantLen >= 0 && int64(8+n) != wantLen {
		return nil, fmt.Errorf("frame at %d is %d bytes, block table says %d", off, 8+n, wantLen)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, fmt.Errorf("frame payload at %d: %v", off, err)
	}
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("frame at %d fails CRC", off)
	}
	return payload, nil
}

// readFooter re-reads the footer from disk. Hot paths go through the
// block cache instead of calling this directly.
func (s *segment) readFooter() (*segFooter, error) {
	f, err := s.fs.Open(s.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readSegFooter(f, s.footerOff)
}

// readBlock reads and decodes data block blk into its entries.
func (s *segment) readBlock(ft *segFooter, blk int) ([]entry, error) {
	if blk < 0 || blk >= len(ft.Blocks) {
		return nil, fmt.Errorf("store: segment %s has no block %d", s.path, blk)
	}
	f, err := s.fs.Open(s.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	payload, err := readSegFrameAt(f, ft.Blocks[blk].Off, ft.Blocks[blk].Len)
	if err != nil {
		return nil, fmt.Errorf("store: segment %s block %d: %w", s.path, blk, err)
	}
	var out []entry
	for len(payload) > 0 {
		if len(payload) < 4 {
			return nil, fmt.Errorf("store: segment %s block %d: truncated record header", s.path, blk)
		}
		n := binary.LittleEndian.Uint32(payload[:4])
		payload = payload[4:]
		if uint32(len(payload)) < n {
			return nil, fmt.Errorf("store: segment %s block %d: truncated record", s.path, blk)
		}
		e, err := decodeEntry(payload[:n])
		if err != nil {
			return nil, fmt.Errorf("store: segment %s block %d: %w", s.path, blk, err)
		}
		out = append(out, e)
		payload = payload[n:]
	}
	return out, nil
}

// findTrace binary-searches the footer's trace index.
func (ft *segFooter) findTrace(app string) (segTrace, bool) {
	i := sort.Search(len(ft.Traces), func(i int) bool { return ft.Traces[i].App >= app })
	if i < len(ft.Traces) && ft.Traces[i].App == app {
		return ft.Traces[i], true
	}
	return segTrace{}, false
}
