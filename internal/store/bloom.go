package store

import (
	"encoding/binary"
	"fmt"
	"math"
)

// bloom is a classic Bloom filter over strings, used by sealed segments to
// answer "might this segment contain trace/class/type X" without touching
// the segment file. It is built once at seal time and immutable afterwards,
// so concurrent readers probe it without locks.
//
// The k probe positions come from Kirsch-Mitzenhenmacher double hashing of
// one 64-bit FNV-1a digest: position_i = h1 + i*h2 (mod m). False positives
// are possible (the tier counts them); false negatives are not — the fuzz
// target in bloom_fuzz_test.go holds that invariant over arbitrary key sets.
type bloom struct {
	bits []uint64
	m    uint64 // total bit count (len(bits)*64)
	k    uint32
}

// bloomBitsPerKey is the seal-time sizing: ~10 bits per key with k=7
// probes yields a ~1% false-positive rate, the standard trade-off.
const bloomBitsPerKey = 10

// newBloom sizes a filter for n keys. n <= 0 still allocates one word so a
// probe is always well-defined (and answers "maybe" only on a true hit).
func newBloom(n int) *bloom {
	if n < 1 {
		n = 1
	}
	words := (n*bloomBitsPerKey + 63) / 64
	b := &bloom{bits: make([]uint64, words), k: 7}
	b.m = uint64(words) * 64
	return b
}

// fnv64a is an inline 64-bit FNV-1a digest.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// hashes derives the double-hashing pair from one digest. h2 is forced odd
// so it is coprime with the power-of-two modulus and the probe sequence
// covers distinct positions.
func (b *bloom) hashes(s string) (uint64, uint64) {
	h1 := fnv64a(s)
	h2 := (h1>>33 | h1<<31) | 1
	return h1, h2
}

// add inserts a key.
func (b *bloom) add(s string) {
	h1, h2 := b.hashes(s)
	for i := uint32(0); i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		b.bits[pos/64] |= 1 << (pos % 64)
	}
}

// mightContain reports whether the key may have been added. A false result
// is definitive.
func (b *bloom) mightContain(s string) bool {
	h1, h2 := b.hashes(s)
	for i := uint32(0); i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// fillRatio is the fraction of set bits — the operator-facing saturation
// statistic pctl segments prints (estimated FPP is fillRatio^k).
func (b *bloom) fillRatio() float64 {
	ones := 0
	for _, w := range b.bits {
		for ; w != 0; w &= w - 1 {
			ones++
		}
	}
	return float64(ones) / float64(b.m)
}

// estFPP estimates the false-positive probability from the fill ratio.
func (b *bloom) estFPP() float64 {
	return math.Pow(b.fillRatio(), float64(b.k))
}

// marshal serializes the filter: k (4 bytes LE) + the bit words.
func (b *bloom) marshal() []byte {
	out := make([]byte, 4+len(b.bits)*8)
	binary.LittleEndian.PutUint32(out[:4], b.k)
	for i, w := range b.bits {
		binary.LittleEndian.PutUint64(out[4+i*8:], w)
	}
	return out
}

// unmarshalBloom rebuilds a filter from marshal's output.
func unmarshalBloom(raw []byte) (*bloom, error) {
	if len(raw) < 4+8 || (len(raw)-4)%8 != 0 {
		return nil, fmt.Errorf("store: bloom blob is %d bytes", len(raw))
	}
	b := &bloom{k: binary.LittleEndian.Uint32(raw[:4])}
	if b.k == 0 || b.k > 32 {
		return nil, fmt.Errorf("store: bloom k=%d out of range", b.k)
	}
	b.bits = make([]uint64, (len(raw)-4)/8)
	for i := range b.bits {
		b.bits[i] = binary.LittleEndian.Uint64(raw[4+i*8:])
	}
	b.m = uint64(len(b.bits)) * 64
	return b, nil
}
