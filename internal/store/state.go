package store

import (
	"sort"

	"repro/internal/provenance"
)

// MVCC read path (design decision D7): the store keeps one mutable
// working state (graph + row table + indexes), and publishes an immutable
// snapshot of it through an atomic pointer after every commit — once per
// batch on the group-commit path, so snapshot cost is amortized exactly
// like fsyncs. Readers load the pointer and run lock-free with unbounded
// retention; every layer of the state tree is copy-on-first-write per
// publish epoch, so a publish copies only what the batch touched.

// snapshot is one immutable published version of the store state. All
// reachable structure is frozen: the graph is a provenance snapshot, the
// row table and index set are COW versions whose shared levels are never
// mutated after publish.
type snapshot struct {
	graph *provenance.Graph
	rows  *rowTable
	idx   *indexSet
	seq   uint64
}

const rowBuckets = 64

// rowHash is an inline FNV-1a for row-bucket selection.
func rowHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// rowTable is the Table-1 row store, sharded by trace with the same
// epoch-based copy-on-write discipline as the provenance graph: snapshot
// copies the bucket-pointer array (O(rowBuckets)), the first write to a
// trace after a snapshot clones that trace's shard.
type rowTable struct {
	epoch   uint64
	count   int
	buckets [rowBuckets]*rowBucket
}

type rowBucket struct {
	epoch  uint64
	shards map[string]*rowShard
}

type rowShard struct {
	epoch uint64
	rows  map[string]Row
	ids   []string // sorted record IDs
}

func newRowTable() *rowTable {
	return &rowTable{}
}

// snapshot returns a frozen copy sharing all shards, then advances the
// working table's epoch.
func (t *rowTable) snapshot() *rowTable {
	snap := &rowTable{epoch: t.epoch, count: t.count, buckets: t.buckets}
	t.epoch++
	return snap
}

func (t *rowTable) shard(app string) *rowShard {
	b := t.buckets[rowHash(app)%rowBuckets]
	if b == nil {
		return nil
	}
	return b.shards[app]
}

func (t *rowTable) shardForWrite(app string) *rowShard {
	bi := rowHash(app) % rowBuckets
	b := t.buckets[bi]
	switch {
	case b == nil:
		b = &rowBucket{epoch: t.epoch, shards: make(map[string]*rowShard)}
		t.buckets[bi] = b
	case b.epoch != t.epoch:
		nb := &rowBucket{epoch: t.epoch, shards: make(map[string]*rowShard, len(b.shards)+1)}
		for k, v := range b.shards {
			nb.shards[k] = v
		}
		b = nb
		t.buckets[bi] = b
	}
	sh := b.shards[app]
	switch {
	case sh == nil:
		sh = &rowShard{epoch: t.epoch, rows: make(map[string]Row)}
		b.shards[app] = sh
	case sh.epoch != t.epoch:
		c := &rowShard{
			epoch: t.epoch,
			rows:  make(map[string]Row, len(sh.rows)+1),
			ids:   append(make([]string, 0, len(sh.ids)+1), sh.ids...),
		}
		for k, v := range sh.rows {
			c.rows[k] = v
		}
		sh = c
		b.shards[app] = sh
	}
	return sh
}

// put inserts or replaces the row under its trace.
func (t *rowTable) put(r Row) {
	sh := t.shardForWrite(r.AppID)
	if _, ok := sh.rows[r.ID]; !ok {
		sh.ids = insertSortedRow(sh.ids, r.ID)
		t.count++
	}
	sh.rows[r.ID] = r
}

func insertSortedRow(ids []string, id string) []string {
	pos := sort.SearchStrings(ids, id)
	ids = append(ids, "")
	copy(ids[pos+1:], ids[pos:])
	ids[pos] = id
	return ids
}

// dropApp removes one trace's shard (demotion to a sealed segment) and
// returns how many rows left. Published snapshots are untouched: the
// bucket is cloned out of frozen epochs before the delete.
func (t *rowTable) dropApp(app string) int {
	bi := rowHash(app) % rowBuckets
	b := t.buckets[bi]
	if b == nil {
		return 0
	}
	sh := b.shards[app]
	if sh == nil {
		return 0
	}
	if b.epoch != t.epoch {
		nb := &rowBucket{epoch: t.epoch, shards: make(map[string]*rowShard, len(b.shards))}
		for k, v := range b.shards {
			nb.shards[k] = v
		}
		b = nb
		t.buckets[bi] = b
	}
	delete(b.shards, app)
	t.count -= len(sh.rows)
	return len(sh.rows)
}

// vacuum rebuilds every bucket's shard map at its current size. Go maps
// never release bucket arrays on delete, so after a mass demotion the
// shard maps would keep their peak footprint; rebuilding them is what
// makes resident memory track the resident set. Published snapshots
// keep their own bucket pointers and are untouched.
func (t *rowTable) vacuum() {
	for bi, b := range t.buckets {
		if b == nil {
			continue
		}
		nb := &rowBucket{epoch: t.epoch, shards: make(map[string]*rowShard, len(b.shards))}
		for k, v := range b.shards {
			nb.shards[k] = v
		}
		t.buckets[bi] = nb
	}
}

// get fetches a row by (trace, record ID).
func (t *rowTable) get(app, id string) (Row, bool) {
	sh := t.shard(app)
	if sh == nil {
		return Row{}, false
	}
	r, ok := sh.rows[id]
	return r, ok
}

// forApp returns one trace's rows sorted by record ID.
func (t *rowTable) forApp(app string) []Row {
	sh := t.shard(app)
	if sh == nil || len(sh.ids) == 0 {
		return nil
	}
	res := make([]Row, 0, len(sh.ids))
	for _, id := range sh.ids {
		res = append(res, sh.rows[id])
	}
	return res
}

// each calls fn for every row, in unspecified order.
func (t *rowTable) each(fn func(Row)) {
	for _, b := range t.buckets {
		if b == nil {
			continue
		}
		for _, sh := range b.shards {
			for _, r := range sh.rows {
				fn(r)
			}
		}
	}
}
