// Package slowfs is a device-model implementation of store.FS for
// benchmarking: it passes every operation through to the real
// filesystem but pads each File.Sync with the latency and bandwidth
// cost of a modeled durable device, the software analogue of running
// the log on a dm-delay target. Benchmark hosts often make fsync
// nearly free (writeback caches, tmpfs), which hides any bottleneck a
// production deployment would meet at the durable device; wrapping the
// store's FS in slowfs restores that bottleneck without touching the
// store's commit logic — group commit, coalescing and concurrent lanes
// all behave exactly as they would against real slow media.
package slowfs

import (
	"os"
	"sync"
	"time"

	"repro/internal/store"
)

// Device models the durable medium: every sync pays Latency plus the
// time to drain the bytes written since the previous sync at
// BytesPerSec. Zero fields cost nothing, so Device{} is a no-op.
type Device struct {
	// Latency is the fixed per-sync cost (command + flush round trip).
	Latency time.Duration
	// BytesPerSec is the drain bandwidth; 0 means infinite.
	BytesPerSec int64
}

// Cost returns the modeled duration of syncing n dirty bytes.
func (d Device) Cost(n int64) time.Duration {
	c := d.Latency
	if d.BytesPerSec > 0 {
		c += time.Duration(float64(n) / float64(d.BytesPerSec) * float64(time.Second))
	}
	return c
}

// FS wraps an inner store.FS with a sync device model.
type FS struct {
	inner store.FS
	dev   Device
}

// New wraps inner (nil means the process filesystem) with dev's costs.
func New(inner store.FS, dev Device) *FS {
	if inner == nil {
		inner = store.OSFS{}
	}
	return &FS{inner: inner, dev: dev}
}

// OpenFile implements store.FS.
func (s *FS) OpenFile(name string, flag int, perm os.FileMode) (store.File, error) {
	f, err := s.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{File: f, dev: s.dev}, nil
}

// Open implements store.FS.
func (s *FS) Open(name string) (store.File, error) {
	f, err := s.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &file{File: f, dev: s.dev}, nil
}

// Rename implements store.FS.
func (s *FS) Rename(oldpath, newpath string) error { return s.inner.Rename(oldpath, newpath) }

// Remove implements store.FS.
func (s *FS) Remove(name string) error { return s.inner.Remove(name) }

// Truncate implements store.FS.
func (s *FS) Truncate(name string, size int64) error { return s.inner.Truncate(name, size) }

// ReadDir implements store.FS.
func (s *FS) ReadDir(dir string) ([]string, error) { return s.inner.ReadDir(dir) }

// SyncDir implements store.FS, paying the fixed latency only: directory
// syncs flush metadata, not the data stream.
func (s *FS) SyncDir(dir string) error {
	if s.dev.Latency > 0 {
		time.Sleep(s.dev.Latency)
	}
	return s.inner.SyncDir(dir)
}

// file counts dirty bytes between syncs so Sync can charge bandwidth.
type file struct {
	store.File
	dev Device

	mu    sync.Mutex
	dirty int64
}

// Write implements store.File.
func (f *file) Write(p []byte) (int, error) {
	n, err := f.File.Write(p)
	f.mu.Lock()
	f.dirty += int64(n)
	f.mu.Unlock()
	return n, err
}

// Sync implements store.File: the real fsync runs first, then the
// modeled device cost for the accumulated dirty bytes is slept off.
func (f *file) Sync() error {
	err := f.File.Sync()
	f.mu.Lock()
	n := f.dirty
	f.dirty = 0
	f.mu.Unlock()
	if c := f.dev.Cost(n); c > 0 {
		time.Sleep(c)
	}
	return err
}
