package slowfs

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestCostModel(t *testing.T) {
	if c := (Device{}).Cost(1 << 20); c != 0 {
		t.Fatalf("zero device cost = %v, want 0", c)
	}
	d := Device{Latency: 2 * time.Millisecond, BytesPerSec: 1 << 20}
	if c := d.Cost(0); c != 2*time.Millisecond {
		t.Fatalf("latency-only cost = %v, want 2ms", c)
	}
	// 512 KiB at 1 MiB/s = 500ms drain on top of the fixed latency.
	if c := d.Cost(512 << 10); c != 502*time.Millisecond {
		t.Fatalf("bandwidth cost = %v, want 502ms", c)
	}
}

// TestSyncChargesDirtyBytes writes through the wrapper and checks Sync
// sleeps roughly the modeled cost, then resets the dirty counter so the
// next sync is cheap again.
func TestSyncChargesDirtyBytes(t *testing.T) {
	dev := Device{Latency: 10 * time.Millisecond}
	fsys := New(nil, dev)
	f, err := fsys.OpenFile(filepath.Join(t.TempDir(), "log"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < dev.Latency {
		t.Fatalf("sync took %v, modeled device demands >= %v", el, dev.Latency)
	}
}

// TestFileContentsUnaffected confirms the wrapper is transparent to the
// data: what is written through slowfs reads back identically.
func TestFileContentsUnaffected(t *testing.T) {
	fsys := New(nil, Device{Latency: time.Millisecond})
	path := filepath.Join(t.TempDir(), "log")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Fatalf("read back %q, want %q", data, "hello")
	}
}
