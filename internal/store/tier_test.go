package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/provenance"
)

// tierStore opens a disk store with tiering on (the default) and opt
// applied on top.
func tierStore(t testing.TB, dir string, opt func(*Options)) *Store {
	t.Helper()
	o := Options{Dir: dir, Model: testModel(t)}
	if opt != nil {
		opt(&o)
	}
	s, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// seedTrace writes n requisition nodes, one person and one edge into app.
// Trace version afterwards is n+2.
func seedTrace(t testing.TB, s *Store, app string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.PutNode(mkReq(fmt.Sprintf("r-%s-%d", app, i), app, fmt.Sprintf("REQ-%s-%d", app, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutNode(mkPerson("p-"+app, app, "who-"+app)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutEdge(mkSubmitter("e-"+app, app, "p-"+app, fmt.Sprintf("r-%s-0", app))); err != nil {
		t.Fatal(err)
	}
}

// traceFingerprint captures the externally observable state of one trace,
// equally answerable by the hot and the cold tier.
func traceFingerprint(t testing.TB, s *Store, app string) map[string]string {
	t.Helper()
	fp := map[string]string{}
	fp["ver"] = fmt.Sprint(s.TraceVersion(app))
	for _, r := range s.RowsForApp(app) {
		fp["row:"+r.ID] = r.Class + "|" + r.XML
	}
	err := s.ViewTrace(app, func(g *provenance.Graph, ver uint64) error {
		fp["view-ver"] = fmt.Sprint(ver)
		for _, n := range g.Nodes(provenance.NodeFilter{AppID: app}) {
			fp["node:"+n.ID] = n.Type + "|" + n.Attr("reqID").Str()
		}
		for _, e := range g.AllEdges(provenance.EdgeFilter{AppID: app}) {
			fp["edge:"+e.ID] = e.Source + ">" + e.Target
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func TestDemoteTracesAndColdReads(t *testing.T) {
	s := tierStore(t, t.TempDir(), nil)
	for _, app := range []string{"A", "B", "C"} {
		seedTrace(t, s, app, 3)
	}
	hotA := traceFingerprint(t, s, "A")
	hotB := traceFingerprint(t, s, "B")

	if err := s.DemoteTraces("A", "B"); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ResidentTraces != 1 {
		t.Fatalf("resident = %d, want 1", st.ResidentTraces)
	}
	ti := st.Tiering
	if !ti.Enabled || ti.Segments != 1 || ti.SealedTraces != 2 || ti.DemotedTraces != 2 {
		t.Fatalf("tiering = %+v", ti)
	}

	// Every read path answers for the demoted traces exactly as before.
	if got := traceFingerprint(t, s, "A"); !reflect.DeepEqual(got, hotA) {
		t.Fatalf("cold fingerprint of A diverged:\nhot  %v\ncold %v", hotA, got)
	}
	if got := traceFingerprint(t, s, "B"); !reflect.DeepEqual(got, hotB) {
		t.Fatalf("cold fingerprint of B diverged:\nhot  %v\ncold %v", hotB, got)
	}
	if n := s.Node("r-A-1"); n == nil || n.Attr("reqID").Str() != "REQ-A-1" {
		t.Fatalf("cold Node = %v", n)
	}
	if e := s.Edge("e-A"); e == nil || e.Source != "p-A" {
		t.Fatalf("cold Edge = %v", e)
	}
	if r, ok := s.Row("r-B-2"); !ok || r.AppID != "B" {
		t.Fatalf("cold Row = %v %v", r, ok)
	}
	want := []string{"A", "B", "C"}
	if got := s.AppIDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("AppIDs = %v, want %v", got, want)
	}

	// The probe-accounting invariant E15 verifies by counters.
	ti = s.Tiering()
	if ti.SegmentProbes != ti.ColdHits+ti.FalseProbes {
		t.Fatalf("probes %d != hits %d + false %d", ti.SegmentProbes, ti.ColdHits, ti.FalseProbes)
	}
	if ti.ColdHits == 0 {
		t.Fatal("cold reads never hit the tier")
	}
}

func TestPromotionOnWrite(t *testing.T) {
	s := tierStore(t, t.TempDir(), nil)
	seedTrace(t, s, "A", 3) // ver 5
	seedTrace(t, s, "B", 1)
	if err := s.DemoteTraces("A"); err != nil {
		t.Fatal(err)
	}
	if got := s.TraceVersion("A"); got != 5 {
		t.Fatalf("sealed version = %d, want 5", got)
	}
	// A write to the sealed trace promotes it transparently.
	if err := s.PutNode(mkReq("r-A-9", "A", "REQ-A-9")); err != nil {
		t.Fatal(err)
	}
	if got := s.TraceVersion("A"); got != 6 {
		t.Fatalf("post-promotion version = %d, want 6", got)
	}
	if s.Tiering().PromotedTraces != 1 {
		t.Fatalf("tiering = %+v", s.Tiering())
	}
	if s.Stats().ResidentTraces != 2 {
		t.Fatalf("stats = %+v", s.Stats())
	}
	fp := traceFingerprint(t, s, "A")

	// Promotion re-logged the base rows, so a restart reproduces the
	// promoted trace even though its segment copy is stale.
	dir := s.opts.Dir
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := tierStore(t, dir, nil)
	if got := traceFingerprint(t, s2, "A"); !reflect.DeepEqual(got, fp) {
		t.Fatalf("restart diverged:\nbefore %v\nafter  %v", fp, got)
	}
	if got := s2.TraceVersion("A"); got != 6 {
		t.Fatalf("restart version = %d, want 6", got)
	}
}

func TestDemotionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := tierStore(t, dir, nil)
	seedTrace(t, s, "A", 4)
	seedTrace(t, s, "B", 2)
	fpA := traceFingerprint(t, s, "A")
	if err := s.DemoteTraces("A"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := tierStore(t, dir, nil)
	ti := s2.Tiering()
	if ti.Segments != 1 || ti.SealedTraces != 1 {
		t.Fatalf("tiering after restart = %+v", ti)
	}
	if s2.Stats().ResidentTraces != 1 {
		t.Fatalf("demoted trace re-entered RAM: %+v", s2.Stats())
	}
	if got := traceFingerprint(t, s2, "A"); !reflect.DeepEqual(got, fpA) {
		t.Fatalf("sealed trace diverged after restart:\nbefore %v\nafter  %v", fpA, got)
	}
}

// TestColdIDLookupWithoutRouter covers the row-ID bloom routing path:
// demotion evicts the record-ID router entries (which is what keeps the
// router from growing with total history), and a restarted store never
// had them — raw-ID reads must resolve through the segments' row-ID
// bloom filters alone.
func TestColdIDLookupWithoutRouter(t *testing.T) {
	dir := t.TempDir()
	s := tierStore(t, dir, nil)
	seedTrace(t, s, "A", 3)
	seedTrace(t, s, "B", 2)
	if err := s.DemoteTraces("A"); err != nil {
		t.Fatal(err)
	}

	// Demotion evicted the router entries...
	if app, ok := s.graph.TraceHint("r-A-1"); ok {
		t.Fatalf("router still routes demoted ID r-A-1 to %q", app)
	}
	// ...yet every ID-based read path still resolves the records.
	if n := s.Node("r-A-1"); n == nil || n.Attr("reqID").Str() != "REQ-A-1" {
		t.Fatalf("cold Node = %v", n)
	}
	if e := s.Edge("e-A"); e == nil || e.Source != "p-A" {
		t.Fatalf("cold Edge = %v", e)
	}
	if r, ok := s.Row("r-A-2"); !ok || r.AppID != "A" {
		t.Fatalf("cold Row = %v %v", r, ok)
	}
	// A miss stays a miss: the bloom gates probes, block scans confirm.
	if n := s.Node("r-A-99"); n != nil {
		t.Fatalf("phantom cold node %v", n)
	}

	// After a restart the rewritten log never mentions the sealed trace,
	// so the router cannot know its IDs; the bloom path is the only route.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := tierStore(t, dir, nil)
	if app, ok := s2.graph.TraceHint("r-A-1"); ok {
		t.Fatalf("restarted router knows sealed ID r-A-1 (%q)", app)
	}
	if n := s2.Node("r-A-1"); n == nil || n.Attr("reqID").Str() != "REQ-A-1" {
		t.Fatalf("post-restart cold Node = %v", n)
	}
	if e := s2.Edge("e-A"); e == nil || e.Target != "r-A-0" {
		t.Fatalf("post-restart cold Edge = %v", e)
	}
	if r, ok := s2.Row("r-A-0"); !ok || r.AppID != "A" {
		t.Fatalf("post-restart cold Row = %v %v", r, ok)
	}
	// The hot trace kept its routing and is untouched by eviction.
	if n := s2.Node("r-B-0"); n == nil || n.AppID != "B" {
		t.Fatalf("hot Node = %v", n)
	}
	// The ownerOf path obeys the same probe-accounting invariant.
	ti := s2.Tiering()
	if ti.SegmentProbes != ti.ColdHits+ti.FalseProbes {
		t.Fatalf("probes %d != hits %d + false %d", ti.SegmentProbes, ti.ColdHits, ti.FalseProbes)
	}
}

func TestSegmentColdAfterPolicy(t *testing.T) {
	s := tierStore(t, t.TempDir(), func(o *Options) { o.SegmentColdAfter = 4 })
	seedTrace(t, s, "old", 2) // last touch at seq 4
	seedTrace(t, s, "hot", 6) // pushes the sequence 8 past "old"
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	ti := s.Tiering()
	if ti.SealedTraces != 1 || ti.DemotedTraces != 1 {
		t.Fatalf("tiering = %+v", ti)
	}
	if s.TraceVersion("old") == 0 || s.TraceVersion("hot") == 0 {
		t.Fatal("a trace became unreadable")
	}
	if s.Stats().ResidentTraces != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
	// Without tiering the same policy knob is inert.
	s2 := tierStore(t, t.TempDir(), func(o *Options) {
		o.DisableTiering = true
		o.SegmentColdAfter = 1
	})
	seedTrace(t, s2, "A", 1)
	seedTrace(t, s2, "B", 5)
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if ti := s2.Tiering(); ti.Enabled || ti.SealedTraces != 0 {
		t.Fatalf("ablation sealed traces: %+v", ti)
	}
	if err := s2.DemoteTraces("A"); err == nil {
		t.Fatal("DemoteTraces succeeded with tiering disabled")
	}
}

func TestTraceAsOf(t *testing.T) {
	s := tierStore(t, t.TempDir(), nil)
	seedTrace(t, s, "A", 2) // seqs 1..4, ver 4
	sealLast := s.Stats().Seq
	sealVer := s.TraceVersion("A")
	if err := s.DemoteTraces("A"); err != nil {
		t.Fatal(err)
	}
	// Promote with newer writes.
	if err := s.PutNode(mkReq("r-A-new", "A", "REQ-NEW")); err != nil {
		t.Fatal(err)
	}
	liveSeq := s.Stats().Seq

	// As of now: the live trace.
	g, ver, err := s.TraceAsOf("A", liveSeq)
	if err != nil {
		t.Fatal(err)
	}
	if ver != sealVer+1 || g.Node("r-A-new") == nil {
		t.Fatalf("live as-of: ver=%d node=%v", ver, g.Node("r-A-new"))
	}
	// As of the seal point: the sealed copy, without the newer write.
	g, ver, err = s.TraceAsOf("A", sealLast)
	if err != nil {
		t.Fatal(err)
	}
	if ver != sealVer {
		t.Fatalf("sealed as-of version = %d, want %d", ver, sealVer)
	}
	if g.Node("r-A-new") != nil {
		t.Fatal("sealed as-of sees a later write")
	}
	if g.Node("r-A-0") == nil {
		t.Fatal("sealed as-of lost a base record")
	}
	// Before the trace's history: no state survives.
	if _, _, err := s.TraceAsOf("A", sealLast-1); !errors.Is(err, ErrNoHistory) {
		t.Fatalf("pre-history as-of err = %v", err)
	}
	if _, _, err := s.TraceAsOf("ghost", liveSeq); !errors.Is(err, ErrNoHistory) {
		t.Fatalf("ghost as-of err = %v", err)
	}
}

func TestHalfSealedSegmentRemovedAtOpen(t *testing.T) {
	dir := t.TempDir()
	s := tierStore(t, dir, nil)
	seedTrace(t, s, "A", 2)
	if err := s.DemoteTraces("A"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-seal leaves a file without a valid trailer. Fake two:
	// pure garbage, and a truncated copy of the real segment.
	sd := segmentsDir(dir)
	if err := os.WriteFile(filepath.Join(sd, "seg-00000099.seg"), []byte("PROVSEG1 garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	real, err := os.ReadFile(segmentPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sd, "seg-00000098.seg"), real[:len(real)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := tierStore(t, dir, nil)
	ti := s2.Tiering()
	if ti.RemovedAtOpen != 2 {
		t.Fatalf("removed %d invalid segments, want 2", ti.RemovedAtOpen)
	}
	if ti.Segments != 1 {
		t.Fatalf("valid segment lost: %+v", ti)
	}
	if s2.TraceVersion("A") == 0 {
		t.Fatal("sealed trace unreadable after cleanup")
	}
	for _, name := range []string{"seg-00000098.seg", "seg-00000099.seg"} {
		if _, err := os.Stat(filepath.Join(sd, name)); !os.IsNotExist(err) {
			t.Fatalf("%s still on disk", name)
		}
	}
}

// TestColdReadEquivalenceRace drives concurrent writers, cold readers and
// demotions against each other; run under -race it is the data-race
// sentinel for the tier, and its assertions check that every trace always
// answers from exactly one coherent tier.
func TestColdReadEquivalenceRace(t *testing.T) {
	s := tierStore(t, t.TempDir(), nil)
	const traces = 6
	apps := make([]string, traces)
	for i := range apps {
		apps[i] = fmt.Sprintf("T%d", i)
		seedTrace(t, s, apps[i], 2)
	}
	var wg sync.WaitGroup
	// Demoter: repeatedly seals the even traces.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if err := s.DemoteTraces(apps[(i*2)%traces]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Writers: append to the odd traces (and occasionally to a sealed
	// one, forcing promotion races).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				app := apps[(2*i+1)%traces]
				if i%10 == 9 {
					app = apps[(2*i)%traces]
				}
				id := fmt.Sprintf("w%d-%s-%d", w, app, i)
				if err := s.PutNode(mkReq(id, app, id)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Readers: fingerprint every trace, asserting base records are always
	// visible whichever tier answers.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				app := apps[i%traces]
				if s.TraceVersion(app) < 4 {
					t.Errorf("trace %s version regressed below its seed", app)
					return
				}
				if s.Node(fmt.Sprintf("r-%s-0", app)) == nil {
					t.Errorf("trace %s lost its seed node", app)
					return
				}
				if len(s.RowsForApp(app)) < 4 {
					t.Errorf("trace %s lost rows", app)
					return
				}
			}
		}()
	}
	wg.Wait()

	ti := s.Tiering()
	if ti.SegmentProbes != ti.ColdHits+ti.FalseProbes {
		t.Fatalf("probes %d != hits %d + false %d", ti.SegmentProbes, ti.ColdHits, ti.FalseProbes)
	}
}
