package viz

import (
	"strings"
	"testing"

	"repro/internal/provenance"
)

func testGraph(t *testing.T) *provenance.Graph {
	t.Helper()
	g := provenance.NewGraph()
	nodes := []*provenance.Node{
		{ID: "hm", Class: provenance.ClassResource, Type: "person", AppID: "A",
			Attrs: map[string]provenance.Value{"name": provenance.String("Joe Doe")}},
		{ID: "req", Class: provenance.ClassData, Type: "jobRequisition", AppID: "A",
			Attrs: map[string]provenance.Value{
				"reqID": provenance.String("REQ1"),
				"a1":    provenance.String("1"), "a2": provenance.String("2"),
				"a3": provenance.String("3"), "a4": provenance.String("4"),
				"a5": provenance.String("a-very-long-value-that-needs-truncating"),
			}},
		{ID: "t1", Class: provenance.ClassTask, Type: "submission", AppID: "A"},
		{ID: "t2", Class: provenance.ClassTask, Type: "approval", AppID: "A"},
		{ID: "cp", Class: provenance.ClassCustom, Type: "controlPoint", AppID: "A",
			Attrs: map[string]provenance.Value{"status": provenance.String("satisfied")}},
		{ID: "other", Class: provenance.ClassData, Type: "doc", AppID: "B"},
	}
	for _, n := range nodes {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	edges := []*provenance.Edge{
		{ID: "e1", Type: "submitterOf", AppID: "A", Source: "hm", Target: "req"},
		{ID: "e2", Type: "checks", AppID: "A", Source: "cp", Target: "req"},
		{ID: "e3", Type: "nextTask", AppID: "A", Source: "t1", Target: "t2"},
	}
	for _, e := range edges {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestTraceDOTBasics(t *testing.T) {
	g := testGraph(t)
	dot := TraceDOT(g, "A", Options{})
	for _, want := range []string{
		"digraph provenance {",
		`label="A";`,
		`"hm"`, `"req"`, `"cp"`,
		"shape=ellipse", // person
		"shape=note",    // data
		"shape=box",     // task
		"shape=octagon", // control point
		`"hm" -> "req" [label="submitterOf"]`,
		`style=dashed`, // checks edge highlighted
		`"t1" -> "t2" [label="nextTask"]`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if strings.Contains(dot, "other") {
		t.Error("DOT leaked another trace's node")
	}
}

func TestTraceDOTOptions(t *testing.T) {
	g := testGraph(t)
	dot := TraceDOT(g, "A", Options{Title: "my title", HideTaskOrder: true, MaxAttrs: 2})
	if !strings.Contains(dot, `label="my title";`) {
		t.Error("custom title missing")
	}
	if strings.Contains(dot, "nextTask") {
		t.Error("HideTaskOrder did not suppress nextTask edges")
	}
	if !strings.Contains(dot, "(+4 more)") {
		t.Errorf("attribute cap not applied:\n%s", dot)
	}
}

func TestTraceDOTTruncatesLongValues(t *testing.T) {
	g := testGraph(t)
	dot := TraceDOT(g, "A", Options{MaxAttrs: 10})
	if strings.Contains(dot, "a-very-long-value-that-needs-truncating") {
		t.Error("long attribute value not truncated")
	}
	if !strings.Contains(dot, "...") {
		t.Error("truncation marker missing")
	}
}

func TestTraceDOTEmptyTrace(t *testing.T) {
	g := provenance.NewGraph()
	dot := TraceDOT(g, "nope", Options{})
	if !strings.HasPrefix(dot, "digraph provenance {") || !strings.HasSuffix(dot, "}\n") {
		t.Errorf("empty trace DOT malformed:\n%s", dot)
	}
}
