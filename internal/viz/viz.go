// Package viz renders provenance traces as Graphviz DOT documents — the
// paper's Fig 2 visualization, where "various icons such as person, gear,
// and notepad represent resources, tasks and data items" and the internal
// control appears as a custom node connected to the data nodes it checks.
// cmd/provd serves the rendering at /graph.dot for external viewers.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/provenance"
)

// Options tunes the rendering.
type Options struct {
	// Title is the graph label (defaults to the trace ID).
	Title string
	// MaxAttrs caps the attributes shown per node (0 = 4).
	MaxAttrs int
	// HideTaskOrder suppresses nextTask edges, which otherwise dominate
	// dense traces.
	HideTaskOrder bool
}

// classStyle maps record classes to Fig 2's visual language.
var classStyle = map[provenance.Class]string{
	provenance.ClassResource: `shape=ellipse, style=filled, fillcolor="#d0e8ff"`,       // person
	provenance.ClassTask:     `shape=box, style="rounded,filled", fillcolor="#e8e8e8"`, // gear
	provenance.ClassData:     `shape=note, style=filled, fillcolor="#fff3c4"`,          // notepad
	provenance.ClassCustom:   `shape=octagon, style=filled, fillcolor="#ffd6d6"`,       // control
}

// TraceDOT renders the subgraph of one trace as a DOT document.
func TraceDOT(g *provenance.Graph, appID string, opts Options) string {
	tr := g.Trace(appID)
	title := opts.Title
	if title == "" {
		title = appID
	}
	maxAttrs := opts.MaxAttrs
	if maxAttrs <= 0 {
		maxAttrs = 4
	}
	var b strings.Builder
	b.WriteString("digraph provenance {\n")
	fmt.Fprintf(&b, "  label=%q;\n", title)
	b.WriteString("  rankdir=LR;\n  node [fontsize=10];\n  edge [fontsize=9];\n")

	for _, n := range tr.Nodes(provenance.NodeFilter{}) {
		style := classStyle[n.Class]
		fmt.Fprintf(&b, "  %q [label=%q, %s];\n", n.ID, nodeLabel(n, maxAttrs), style)
	}
	for _, e := range tr.AllEdges(provenance.EdgeFilter{}) {
		if opts.HideTaskOrder && e.Type == "nextTask" {
			continue
		}
		attrs := fmt.Sprintf("label=%q", e.Type)
		if e.Type == "checks" {
			attrs += `, style=dashed, color="#cc0000"`
		}
		fmt.Fprintf(&b, "  %q -> %q [%s];\n", e.Source, e.Target, attrs)
	}
	b.WriteString("}\n")
	return b.String()
}

// nodeLabel builds the multi-line node caption: type, ID, then up to
// maxAttrs attributes in sorted order.
func nodeLabel(n *provenance.Node, maxAttrs int) string {
	var lines []string
	lines = append(lines, n.Type, n.ID)
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		if !n.Attrs[k].IsZero() {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i >= maxAttrs {
			lines = append(lines, fmt.Sprintf("(+%d more)", len(keys)-maxAttrs))
			break
		}
		v := n.Attrs[k].Text()
		if len(v) > 24 {
			v = v[:21] + "..."
		}
		lines = append(lines, k+"="+v)
	}
	return strings.Join(lines, "\n")
}
