package repro

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example binary end to end and checks for
// its landmark output — the deliverable smoke test for examples/.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow under -short")
	}
	cases := []struct {
		path  string
		wants []string
	}{
		{"./examples/quickstart", []string{
			"business vocabulary (BOM excerpt)",
			"my-first-control",
			"compliance dashboard",
		}},
		{"./examples/hiring", []string{
			"Table 1: provenance entities",
			"ps:jobRequisition",
			"Fig 2: the trace as a provenance graph",
			"internal control point (custom node)",
			"status=satisfied",
		}},
		{"./examples/procurement", []string{
			"purchase-to-pay under 70% visibility",
			"three-way-match",
			"tightened invoice-tolerance",
			"version 2",
		}},
		{"./examples/claims", []string{
			"continuous mode",
			"incremental re-checks",
			"why Indeterminate beats guessing",
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.path, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", c.path).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", c.path, err, out)
			}
			for _, want := range c.wants {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q", c.path, want)
				}
			}
		})
	}
}
