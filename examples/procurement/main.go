// The procurement example runs the purchase-to-pay domain under partial
// visibility: goods receipts and e-mail approvals are unmanaged and only
// captured with 70% probability. It shows how the three-way-match control
// degrades gracefully — definite verdicts where evidence was captured,
// alerts on genuine violations — and demonstrates changing a control at
// runtime (tightening the invoice tolerance) without touching any code.
//
// Run with: go run ./examples/procurement
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/workload"
)

func main() {
	domain, err := workload.Procurement()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.New(domain, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fmt.Println("== purchase-to-pay under 70% visibility of unmanaged events ==")
	res := domain.Simulate(workload.SimOptions{
		Seed: 11, Traces: 300, ViolationRate: 0.25, Visibility: 0.7,
	})
	fmt.Printf("   generated %d events, %d lost in unmanaged systems\n",
		res.Generated, res.Dropped)
	if err := sys.Ingest(res.Events); err != nil {
		log.Fatal(err)
	}
	if err := sys.CorrelateAll(); err != nil {
		log.Fatal(err)
	}
	outcomes, err := sys.CheckAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sys.Board.Render())

	// How did the verdicts line up with the (normally unknowable) truth?
	var tp, fp, fn int
	for _, o := range outcomes {
		truth := res.Truth[o.Result.AppID]
		positive := truth.Violation && truth.ControlID == o.ControlID
		fired := o.Result.Verdict == rules.Violated
		switch {
		case positive && fired:
			tp++
		case !positive && fired:
			fp++
		case positive && !fired:
			fn++
		}
	}
	fmt.Printf("== against ground truth: %d true alarms, %d false alarms (capture gaps), %d missed ==\n\n",
		tp, fp, fn)

	// Runtime control change: tighten the invoice tolerance from 5% to 1%.
	// This is a rule-text redeployment — the paper's headline capability.
	orig := ""
	for _, cs := range domain.Controls {
		if cs.ID == "invoice-tolerance" {
			orig = cs.Text
		}
	}
	tightened := strings.Replace(orig, "* 1.05", "* 1.01", 1)
	cp, err := sys.Registry.Deploy("invoice-tolerance", "", tightened)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== tightened invoice-tolerance to 1%% (now version %d) ==\n", cp.Version)
	if _, err := sys.CheckAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Print(sys.Board.Render())
	fmt.Println("   (compare the invoice-tolerance row: more invoices now out of tolerance,")
	fmt.Println("    with zero changes to the ERP, recorders, or pipeline)")
}
