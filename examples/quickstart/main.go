// Quickstart walks the paper's Fig 3 pipeline end to end in one page of
// code: provenance data model -> execution object model (XOM) -> business
// object model / vocabulary (BOM) -> an internal control written in
// business vocabulary -> compliance verdicts on live traces.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	// The hiring domain bundles the paper's "new position open" process:
	// data model, recorder clients, correlation rules and vocabulary.
	domain, err := workload.Hiring()
	if err != nil {
		log.Fatal(err)
	}

	// Step 1-2 of Fig 3 happened inside workload.Hiring(): the XOM was
	// generated from the data model and verbalized. Show a few entries of
	// the resulting BOM, in the paper's own notation.
	fmt.Println("== business vocabulary (BOM excerpt) ==")
	for i, line := range domain.Vocab.Dump() {
		if i >= 8 {
			fmt.Printf("   ... and %d more entries\n", len(domain.Vocab.Dump())-8)
			break
		}
		fmt.Println("  ", line)
	}

	// Step 3: wire the full system — store, recorders, correlator,
	// control registry, dashboard.
	sys, err := core.New(domain, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Step 4: author a brand-new internal control in business vocabulary.
	// No data-model or application-code knowledge needed: the phrases come
	// from the vocabulary above.
	const myControl = `
definitions
  set 'the request' to a job requisition ;
if
  the position type of 'the request' is not "new"
  or the approval of 'the request' exists
then
  the internal control is satisfied ;
else
  the internal control is not satisfied ;
  add alert "new position lacks general manager approval" ;
`
	if _, err := sys.Registry.Deploy("my-first-control", "GM approval required", myControl); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== deployed controls ==")
	for _, cp := range sys.Registry.List() {
		fmt.Printf("   %-20s v%d  %s\n", cp.ID, cp.Version, cp.Name)
	}

	// Step 5: play 25 process instances (30% seeded violations) and ingest
	// their application events through the recorder clients.
	res := domain.Simulate(workload.SimOptions{
		Seed: 7, Traces: 25, ViolationRate: 0.3, Visibility: 1.0,
	})
	if err := sys.Ingest(res.Events); err != nil {
		log.Fatal(err)
	}
	if err := sys.CorrelateAll(); err != nil {
		log.Fatal(err)
	}

	// Step 6: check compliance and read the dashboard.
	if _, err := sys.CheckAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== compliance dashboard ==")
	fmt.Print(sys.Board.Render())

	fmt.Println("== recent violations ==")
	for _, v := range sys.Board.RecentViolations(5) {
		fmt.Printf("   %-18s %-20s %v\n", v.AppID, v.ControlID, v.Alerts)
	}
}
