// The hiring example reproduces the paper's running example in full:
// Fig 1's "new position open" process is played once, its application
// events are captured and correlated into a provenance graph, the
// provenance rows are printed exactly as Table 1 stores them, and the
// gm-approval internal control is materialized as a custom node connected
// to the data nodes it verifies (Fig 2). A second phase runs 200 traces
// with seeded violations and prints the compliance dashboard.
//
// Run with: go run ./examples/hiring
package main

import (
	"fmt"
	"log"

	"repro/internal/controls"
	"repro/internal/core"
	"repro/internal/provenance"
	"repro/internal/workload"
)

func main() {
	domain, err := workload.Hiring()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.New(domain, core.Config{Materialize: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// --- Phase 1: one compliant, fully visible new-position trace. ---
	// Pick a seed whose first trace takes the approval path of Fig 1.
	var res *workload.SimResult
	for seed := int64(1); ; seed++ {
		res = domain.Simulate(workload.SimOptions{Seed: seed, Traces: 1, Visibility: 1.0})
		approved := false
		for _, ev := range res.Events {
			if ev.Type == "approval.recorded" && ev.Payload["approved"] == "true" {
				approved = true
			}
		}
		if approved {
			break
		}
	}
	if err := sys.Ingest(res.Events); err != nil {
		log.Fatal(err)
	}
	if err := sys.CorrelateAll(); err != nil {
		log.Fatal(err)
	}
	app := sys.Store.AppIDs()[0]

	fmt.Println("== Table 1: provenance entities of the execution trace ==")
	fmt.Printf("%-24s %-9s %-16s %s\n", "ID", "CLASS", "APPID", "XML")
	for _, row := range sys.Store.RowsForApp(app) {
		xml := row.XML
		if len(xml) > 80 {
			xml = xml[:77] + "..."
		}
		fmt.Printf("%-24s %-9s %-16s %s\n", row.ID, row.Class, row.AppID, xml)
	}

	// Evaluate and materialize the internal controls (Fig 2).
	if _, err := sys.CheckAll(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== Fig 2: the trace as a provenance graph ==")
	err = sys.Store.View(func(g *provenance.Graph) error {
		tr := g.Trace(app)
		for _, n := range tr.Nodes(provenance.NodeFilter{}) {
			icon := map[provenance.Class]string{
				provenance.ClassResource: "person ",
				provenance.ClassTask:     "gear   ",
				provenance.ClassData:     "notepad",
				provenance.ClassCustom:   "control",
			}[n.Class]
			fmt.Printf("   [%s] %-28s %s\n", icon, n.ID, n.Type)
		}
		fmt.Println("   edges:")
		for _, e := range tr.AllEdges(provenance.EdgeFilter{}) {
			fmt.Printf("     %-28s -%s-> %s\n", e.Source, e.Type, e.Target)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// The control point custom node and its links, as Fig 2 draws them.
	fmt.Println("\n== internal control point (custom node) ==")
	cp := sys.Store.Node("cp-gm-approval-" + app)
	if cp == nil {
		log.Fatal("control point missing")
	}
	fmt.Printf("   %s status=%s\n", cp.ID, cp.Attr("status").Text())
	err = sys.Store.View(func(g *provenance.Graph) error {
		for _, e := range g.Edges(cp.ID, provenance.Out, controls.ChecksRelation) {
			fmt.Printf("   checks -> %s (%s)\n", e.Target, g.Node(e.Target).Type)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- Phase 2: 200 traces with seeded violations, in a fresh system
	// (the simulator reuses trace IDs across runs). ---
	fmt.Println("\n== 200 traces, 30% seeded violations, full visibility ==")
	bulkSys, err := core.New(domain, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer bulkSys.Close()
	bulk := domain.Simulate(workload.SimOptions{
		Seed: 42, Traces: 200, ViolationRate: 0.3, Visibility: 1.0,
	})
	if err := bulkSys.Ingest(bulk.Events); err != nil {
		log.Fatal(err)
	}
	if err := bulkSys.CorrelateAll(); err != nil {
		log.Fatal(err)
	}
	if _, err := bulkSys.CheckAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Print(bulkSys.Board.Render())
	fmt.Println("== sample violations ==")
	for i, v := range bulkSys.Board.RecentViolations(5) {
		fmt.Printf("   %d. %-18s %-20s %v\n", i+1, v.AppID, v.ControlID, v.Alerts)
	}
}
