// The claims example runs the insurance-claims domain in continuous mode:
// incremental correlation and compliance checking ride the store's change
// feed, so the dashboard updates as events arrive — the paper's
// "continuous compliance checking" future-work item. It also shows the
// three-valued verdicts at work: when the adjuster's estimate never
// reaches the provenance store, the estimate-bound control answers
// Indeterminate instead of raising a false alarm.
//
// Run with: go run ./examples/claims
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/workload"
)

func main() {
	domain, err := workload.Claims()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.New(domain, core.Config{Continuous: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	const traces = 150
	res := domain.Simulate(workload.SimOptions{
		Seed: 19, Traces: traces, ViolationRate: 0.25, Visibility: 0.75,
	})
	fmt.Printf("== streaming %d events from %d claims (continuous mode) ==\n",
		len(res.Events), traces)
	start := time.Now()
	if err := sys.Ingest(res.Events); err != nil {
		log.Fatal(err)
	}
	// The checker works off the change feed; wait for it to converge.
	for {
		done := true
		kpis := sys.Board.Snapshot()
		if len(kpis) < len(domain.Controls) {
			done = false
		}
		for _, k := range kpis {
			if k.Total < traces {
				done = false
			}
		}
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("   converged in %s after %d incremental re-checks\n\n",
		time.Since(start).Round(time.Millisecond), sys.Checker.Checked())
	fmt.Print(sys.Board.Render())

	// Indeterminate anatomy: find an estimate-bound decision the engine
	// declined to decide and show why.
	fmt.Println("== why Indeterminate beats guessing ==")
	shown := 0
	for _, app := range sys.Store.AppIDs() {
		outcomes, err := sys.Registry.Check(app)
		if err != nil {
			log.Fatal(err)
		}
		for _, o := range outcomes {
			if o.ControlID == "estimate-bound" && o.Result.Verdict == rules.Indeterminate {
				fmt.Printf("   %s: %s\n", app, o.Result.Verdict)
				for _, note := range o.Result.Notes {
					fmt.Printf("      %s\n", note)
				}
				truth := res.Truth[app]
				fmt.Printf("      (ground truth: violation=%v — a two-valued check would have had to guess)\n",
					truth.Violation && truth.ControlID == "estimate-bound")
				shown++
			}
		}
		if shown >= 3 {
			break
		}
	}
	if shown == 0 {
		fmt.Println("   (no indeterminate estimate-bound decisions at this seed; try a lower -visibility)")
	}

	fmt.Println("\n== recent violations ==")
	for _, v := range sys.Board.RecentViolations(5) {
		fmt.Printf("   %-18s %-22s %v\n", v.AppID, v.ControlID, v.Alerts)
	}
}
